"""Reorder-tolerant receiver: bounded out-of-order buffer, in-order QP
delivery, ACK semantics, and ConWeave epoch/tail-marker handling."""

from repro.cc.base import CongestionControl
from repro.net.host import Host
from repro.net.packet import ACK, DATA, Packet
from repro.net.port import connect
from repro.transport.flow import Flow
from repro.transport.sender import TransportConfig
from repro.units import us

PAYLOAD = 1000
SIZE = PAYLOAD + 48


def pair(sim, window_bytes=10 * PAYLOAD, max_pkts=512):
    cfg = TransportConfig(
        reorder_window_bytes=window_bytes, reorder_max_pkts=max_pkts
    )
    a = Host(sim, "a", host_id=0, transport=cfg)
    b = Host(sim, "b", host_id=1, transport=cfg)
    connect(sim, a, b, 100.0, 0)
    return a, b


def rqp_for(b, total_bytes=5 * PAYLOAD):
    flow = Flow(0, 0, 1, total_bytes)
    return b.register_receiver(flow)


def seg(i, last=False, tag=-1, tail=False):
    pkt = Packet(
        DATA, flow_id=0, src=0, dst=1, seq=i * PAYLOAD, size=SIZE, payload=PAYLOAD
    )
    pkt.last = last
    pkt.lb_tag = tag
    pkt.lb_tail = tail
    return pkt


def acks_of(host):
    log = []
    orig = host.receive

    def spy(pkt, in_port):
        log.append(pkt)
        orig(pkt, in_port)

    host.receive = spy
    return log


class TestInOrderBaseline:
    def test_in_order_unchanged(self, sim):
        a, b = pair(sim)
        acks = acks_of(a)
        rqp = rqp_for(b)
        for i in range(5):
            rqp.on_data(seg(i, last=(i == 4)))
        sim.run()
        assert rqp.completed
        assert rqp.rcv_nxt == 5 * PAYLOAD
        assert rqp.ooo_buffered == 0
        assert [p.seq for p in acks if p.kind == ACK][-1] == 5 * PAYLOAD


class TestBuffering:
    def test_hole_filled_delivers_in_order(self, sim):
        a, b = pair(sim)
        acks = acks_of(a)
        rqp = rqp_for(b)
        rqp.on_data(seg(0))
        rqp.on_data(seg(2))  # hole at seg 1
        rqp.on_data(seg(3))
        assert rqp.rcv_nxt == PAYLOAD  # nothing delivered past the hole
        assert rqp.ooo_buffered == 2
        rqp.on_data(seg(1))  # hole fills
        assert rqp.rcv_nxt == 4 * PAYLOAD
        assert rqp.ooo_delivered == 2
        rqp.on_data(seg(4, last=True))
        sim.run()
        assert rqp.completed
        seqs = [p.seq for p in acks if p.kind == ACK]
        assert seqs == sorted(seqs)  # cumulative ACKs never regress
        assert seqs[-1] == 5 * PAYLOAD

    def test_buffered_ooo_sends_no_dup_ack(self, sim):
        a, b = pair(sim)
        acks = acks_of(a)
        rqp = rqp_for(b)
        rqp.on_data(seg(0))
        rqp.on_data(seg(2))
        sim.run()
        # One ACK for seg 0; the buffered arrival is silent.
        assert len([p for p in acks if p.kind == ACK]) == 1
        assert rqp.dup_acks_sent == 0

    def test_completion_via_drained_last_packet(self, sim):
        a, b = pair(sim)
        rqp = rqp_for(b, total_bytes=3 * PAYLOAD)
        rqp.on_data(seg(2, last=True))  # last packet arrives first
        rqp.on_data(seg(1))
        assert not rqp.completed
        rqp.on_data(seg(0))
        sim.run()
        assert rqp.completed
        assert rqp.rcv_nxt == 3 * PAYLOAD


class TestEdgeCases:
    def test_window_overflow_drops_with_dup_ack(self, sim):
        a, b = pair(sim, window_bytes=2 * PAYLOAD)
        acks = acks_of(a)
        rqp = rqp_for(b)
        rqp.on_data(seg(0))
        rqp.on_data(seg(2))  # inside window (<= rcv_nxt + 2 segments)
        rqp.on_data(seg(7))  # far beyond window -> dropped
        sim.run()
        assert rqp.ooo_overflows == 1
        assert rqp.dup_acks_sent == 1
        dup = [p for p in acks if p.kind == ACK][-1]
        assert dup.seq == PAYLOAD  # cumulative, pointing at the hole

    def test_max_pkts_overflow(self, sim):
        a, b = pair(sim, window_bytes=100 * PAYLOAD, max_pkts=2)
        rqp = rqp_for(b, total_bytes=100 * PAYLOAD)
        rqp.on_data(seg(0))
        for i in (2, 3, 4):
            rqp.on_data(seg(i))
        assert rqp.ooo_buffered == 2
        assert rqp.ooo_overflows == 1

    def test_duplicate_buffered_copy_released(self, sim):
        a, b = pair(sim)
        rqp = rqp_for(b)
        rqp.on_data(seg(0))
        rqp.on_data(seg(2))
        rqp.on_data(seg(2))  # second copy of a buffered frame
        assert rqp.ooo_duplicates == 1
        assert rqp.ooo_buffered == 1

    def test_stale_seq_dup_acks(self, sim):
        a, b = pair(sim)
        acks = acks_of(a)
        rqp = rqp_for(b)
        rqp.on_data(seg(0))
        rqp.on_data(seg(1))
        rqp.on_data(seg(0))  # timeout-rewound retransmission
        sim.run()
        assert rqp.dup_acks_sent == 1
        assert [p for p in acks if p.kind == ACK][-1].seq == 2 * PAYLOAD

    def test_stale_buffered_purged_after_rewind_retx(self, sim):
        """A retransmission burst can advance rcv_nxt past buffered copies;
        they must be purged, not pinned forever."""
        a, b = pair(sim)
        rqp = rqp_for(b)
        rqp.on_data(seg(0))
        rqp.on_data(seg(2))
        rqp.on_data(seg(3))
        # Go-back-N retransmits 1..3; the buffered 2 drains with 1, the
        # retransmitted 2 and 3 then arrive as stale/in-order mixes.
        rqp.on_data(seg(1))
        assert rqp.rcv_nxt == 4 * PAYLOAD
        rqp.on_data(seg(2))  # stale retransmission
        rqp.on_data(seg(3))  # stale retransmission
        assert not rqp._ooo
        assert rqp._ooo_bytes == 0


class TestEpochTail:
    def test_tail_delivery_counts(self, sim):
        a, b = pair(sim)
        rqp = rqp_for(b)
        rqp.on_data(seg(0, tag=0, tail=True))
        rqp.on_data(seg(1, tag=1))
        assert rqp.reroute_tails == 1
        assert rqp.max_epoch_seen == 1

    def test_tail_with_unexplained_hole_hints_loss(self, sim):
        a, b = pair(sim)
        cfg = b.transport_config
        cfg.ack_every = 4  # keep normal ACKs quiet so the hint is visible
        acks = acks_of(a)
        rqp = rqp_for(b, total_bytes=20 * PAYLOAD)
        rqp.on_data(seg(1, tag=1))  # new-epoch frame beyond a hole
        rqp.on_data(seg(0, tag=0, tail=True))  # old epoch fully drained...
        # ...and seg 1 drains with it, so no hole remains: no hint.
        assert rqp.tail_loss_hints == 0
        rqp.on_data(seg(4, tag=1))  # hole at 2,3
        rqp.on_data(seg(2, tag=0, tail=True))  # old path drained, hole at 3
        sim.run()
        assert rqp.tail_loss_hints == 1
        assert any(p.kind == ACK and p.seq == 3 * PAYLOAD for p in acks)

    def test_double_reroute_suppresses_hint(self, sim):
        """Epoch-0 tail drains while the hole belongs to epoch 1 (in
        flight on its own slower path) and the buffered frame is already
        epoch 2: loss is NOT provable, so no hint may fire."""
        a, b = pair(sim)
        cfg = b.transport_config
        cfg.ack_every = 4
        rqp = rqp_for(b, total_bytes=20 * PAYLOAD)
        rqp.on_data(seg(4, tag=2))  # epoch-2 frame beyond the hole
        rqp.on_data(seg(0, tag=0))
        rqp.on_data(seg(1, tag=0, tail=True))  # epoch-0 tail, hole at 2,3
        sim.run()
        assert rqp.reroute_tails == 1
        assert rqp.tail_loss_hints == 0

    def test_tail_marker_loss_degrades_gracefully(self, sim):
        """If the tail marker never arrives (dropped old path), delivery
        still completes purely seq-driven once the hole fills."""
        a, b = pair(sim)
        rqp = rqp_for(b, total_bytes=4 * PAYLOAD)
        rqp.on_data(seg(0, tag=0))
        rqp.on_data(seg(2, tag=1))
        rqp.on_data(seg(3, tag=1, last=True))
        assert not rqp.completed
        rqp.on_data(seg(1, tag=0))  # retransmitted hole (its tail was lost)
        sim.run()
        assert rqp.completed
        assert rqp.reroute_tails == 0
        assert rqp.rcv_nxt == 4 * PAYLOAD


class TestDupAckFastRewind:
    def test_rewind_disabled_by_default(self, sim):
        a, b = pair(sim)
        flow = Flow(0, 0, 1, 50 * PAYLOAD)
        b.register_receiver(flow)
        qp = a.start_flow(flow, CongestionControl(), us(10))
        assert qp._dupack_rewind == 0

    def test_dup_ack_triggers_rewind(self, sim):
        cfg = TransportConfig(reorder_window_bytes=10 * PAYLOAD, dupack_rewind=1)
        a = Host(sim, "a", host_id=0, transport=cfg)
        b = Host(sim, "b", host_id=1, transport=cfg)
        connect(sim, a, b, 100.0, 0)
        flow = Flow(0, 0, 1, 50 * PAYLOAD)
        b.register_receiver(flow)
        qp = a.start_flow(flow, CongestionControl(), us(10))
        qp.snd_una = 5 * PAYLOAD
        qp.snd_nxt = 20 * PAYLOAD
        dup = Packet(ACK, flow_id=0, src=1, dst=0, seq=5 * PAYLOAD, size=64)
        qp.on_ack(dup)
        assert qp.fast_rewinds == 1
        # Rewound to snd_una and already retransmitting from there: the
        # first re-emitted frames start at 5 * PAYLOAD, far below the old
        # snd_nxt.
        assert 5 * PAYLOAD < qp.snd_nxt < 20 * PAYLOAD

    def test_rewind_rate_limited_per_rtt(self, sim):
        cfg = TransportConfig(reorder_window_bytes=10 * PAYLOAD, dupack_rewind=1)
        a = Host(sim, "a", host_id=0, transport=cfg)
        b = Host(sim, "b", host_id=1, transport=cfg)
        connect(sim, a, b, 100.0, 0)
        flow = Flow(0, 0, 1, 50 * PAYLOAD)
        b.register_receiver(flow)
        qp = a.start_flow(flow, CongestionControl(), us(10))
        qp.snd_una = 5 * PAYLOAD
        for _ in range(4):  # a burst of dup ACKs within one RTT
            qp.snd_nxt = 20 * PAYLOAD
            qp.on_ack(Packet(ACK, flow_id=0, src=1, dst=0, seq=5 * PAYLOAD, size=64))
        assert qp.fast_rewinds == 1

    def test_cumulative_jump_snaps_snd_nxt_forward(self, sim):
        cfg = TransportConfig(reorder_window_bytes=10 * PAYLOAD, dupack_rewind=1)
        a = Host(sim, "a", host_id=0, transport=cfg)
        b = Host(sim, "b", host_id=1, transport=cfg)
        connect(sim, a, b, 100.0, 0)
        flow = Flow(0, 0, 1, 50 * PAYLOAD)
        b.register_receiver(flow)
        qp = a.start_flow(flow, CongestionControl(), us(10))
        qp.snd_una = qp.snd_nxt = 5 * PAYLOAD  # just rewound
        # The receiver's buffer drained: the cumulative ACK jumps past
        # snd_nxt; re-sending 5..20 would only echo stale dup ACKs, so
        # transmission resumes at/after the acked byte instead.
        qp.on_ack(Packet(ACK, flow_id=0, src=1, dst=0, seq=20 * PAYLOAD, size=64))
        assert qp.snd_una == 20 * PAYLOAD
        assert qp.snd_nxt >= 20 * PAYLOAD

    def test_nack_survives_ack_coalescing(self, sim):
        """With ack_every > 1 the receiver's snd_una view lags, so a NACK
        ACK can *advance* snd_una — it must still trigger the rewind (the
        seq == snd_una duplicate test alone would miss it)."""
        cfg = TransportConfig(
            ack_every=4, reorder_window_bytes=10 * PAYLOAD, dupack_rewind=1
        )
        a = Host(sim, "a", host_id=0, transport=cfg)
        b = Host(sim, "b", host_id=1, transport=cfg)
        connect(sim, a, b, 100.0, 0)
        flow = Flow(0, 0, 1, 50 * PAYLOAD)
        b.register_receiver(flow)
        qp = a.start_flow(flow, CongestionControl(), us(10))
        qp.snd_una = 3 * PAYLOAD
        qp.snd_nxt = 20 * PAYLOAD
        nack = Packet(ACK, flow_id=0, src=1, dst=0, seq=8 * PAYLOAD, size=64)
        nack.lb_tail = True  # ACK-side meaning: retransmit request
        qp.on_ack(nack)
        assert qp.fast_rewinds == 1
        assert qp.snd_una == 8 * PAYLOAD

    def test_transport_config_not_mutated_across_topologies(self):
        """install_lb adjusts the *topology's* transport config; a caller
        config shared between topologies must stay untouched."""
        from repro.lb import LbConfig
        from repro.topo.fattree import fattree
        from repro.sim.engine import Simulator

        tc = TransportConfig()
        topo = fattree(Simulator(), k=4, transport_config=tc, lb=LbConfig("spray"))
        assert topo.transport_config.reorder_window_bytes > 0
        assert topo.transport_config.dupack_rewind == 1
        assert tc.reorder_window_bytes == 0  # caller's object untouched
        assert tc.dupack_rewind == 0
        baseline = fattree(Simulator(), k=4, transport_config=tc)
        assert baseline.transport_config.reorder_window_bytes == 0

    def test_overflow_drops_recover_without_timeout(self, sim):
        """The wedge regression: a reordering fabric whose receiver window
        overflows (dropping frames) must still complete every flow with
        retransmission timeouts disabled — the overflow dup ACKs drive
        fast rewinds."""
        from repro.lb import LbConfig, install_lb
        from repro.topo.fattree import fattree

        topo = fattree(sim, k=4, lb=LbConfig("spray"))
        # Shrink the window after install: 2 frames of tolerance only.
        topo.transport_config.reorder_window_bytes = 2 * 1452
        a = topo.node("h_0_0_0")
        b = topo.node("h_2_1_0")
        flow = Flow(0, a.host_id, b.host_id, 300_000)
        rqp = topo.hosts[b.host_id].register_receiver(flow)
        qp = topo.hosts[a.host_id].start_flow(flow, CongestionControl(), us(10))
        sim.run()
        assert rqp.ooo_overflows > 0  # the scenario actually dropped
        assert qp.timeouts == 0
        assert qp.fast_rewinds > 0
        assert rqp.completed


class TestEndToEndSprayedFattree:
    def test_flow_completes_under_heavy_reorder(self, sim):
        """Integration: a sprayed fat-tree flow completes with the buffer
        absorbing reorder and zero dup ACKs."""
        from repro.lb import LbConfig
        from repro.topo.fattree import fattree

        topo = fattree(sim, k=4, lb=LbConfig("spray"))
        a = topo.node("h_0_0_0")
        b = topo.node("h_2_1_0")
        flow = Flow(0, a.host_id, b.host_id, 200_000)
        rqp = topo.hosts[b.host_id].register_receiver(flow)
        topo.hosts[a.host_id].start_flow(flow, CongestionControl(), us(10))
        sim.run()
        assert rqp.completed
        assert rqp.ooo_buffered == rqp.ooo_delivered
        assert rqp.ooo_overflows == 0
