"""Flow descriptors and completion records."""

import pytest

from repro.transport.flow import Flow, FlowRecord
from repro.units import us


class TestFlow:
    def test_valid_flow(self):
        f = Flow(1, 0, 2, 1000, start_ps=us(5))
        assert f.size_bytes == 1000
        assert f.start_ps == us(5)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Flow(0, 0, 1, 0)
        with pytest.raises(ValueError):
            Flow(0, 0, 1, -5)

    def test_rejects_self_flow(self):
        with pytest.raises(ValueError):
            Flow(0, 3, 3, 100)

    def test_repr(self):
        assert "0->1" in repr(Flow(0, 0, 1, 100))


class TestFlowRecord:
    def test_fct_is_finish_minus_start(self):
        f = Flow(0, 0, 1, 100, start_ps=us(10))
        rec = FlowRecord(f, finish_ps=us(25))
        assert rec.fct_ps == us(15)

    def test_slowdown(self):
        f = Flow(0, 0, 1, 100)
        rec = FlowRecord(f, finish_ps=us(30))
        rec.ideal_fct_ps = us(10)
        assert rec.slowdown == pytest.approx(3.0)

    def test_slowdown_requires_ideal(self):
        rec = FlowRecord(Flow(0, 0, 1, 100), finish_ps=us(30))
        with pytest.raises(ValueError):
            _ = rec.slowdown
