"""Sender QP: packetization, pacing, window clocking, go-back-N."""

import pytest

from repro.cc.base import CongestionControl
from repro.net.host import Host
from repro.net.port import connect
from repro.transport.flow import Flow
from repro.transport.sender import HEADER_BYTES, TransportConfig
from repro.units import DEFAULT_MTU, serialization_ps, us


def pair(sim, transport=None, rate=100.0, delay=0):
    a = Host(sim, "a", host_id=0, transport=transport)
    b = Host(sim, "b", host_id=1, transport=transport)
    connect(sim, a, b, rate, delay)
    return a, b


class RecordingCc(CongestionControl):
    def __init__(self):
        self.acks = 0
        self.timeouts = 0
        self.finished = 0

    def on_ack(self, qp, ack):
        self.acks += 1

    def on_timeout(self, qp):
        self.timeouts += 1

    def on_flow_finish(self, qp):
        self.finished += 1


class TestPacketization:
    def test_payload_is_mtu_minus_header(self, sim):
        a, b = pair(sim)
        got = []
        b.register_receiver(Flow(0, 0, 1, 10_000))
        orig = b.receive

        def spy(pkt, in_port):
            from repro.net.packet import DATA
            if pkt.kind == DATA:
                got.append(pkt.payload)
            orig(pkt, in_port)

        b.receive = spy
        a.start_flow(Flow(0, 0, 1, 10_000), CongestionControl(), us(10))
        sim.run()
        full = DEFAULT_MTU - HEADER_BYTES
        assert got[:-1] == [full] * (len(got) - 1)
        assert got[-1] == 10_000 - full * (len(got) - 1)
        assert sum(got) == 10_000

    def test_last_flag_only_on_final_packet(self, sim):
        a, b = pair(sim)
        flags = []
        flow = Flow(0, 0, 1, 5000)
        b.register_receiver(flow)
        orig = b.receive

        def spy(pkt, in_port):
            from repro.net.packet import DATA
            if pkt.kind == DATA:
                flags.append(pkt.last)
            orig(pkt, in_port)

        b.receive = spy
        a.start_flow(flow, CongestionControl(), us(10))
        sim.run()
        assert flags[-1] is True
        assert not any(flags[:-1])

    def test_tiny_flow_single_packet(self, sim):
        a, b = pair(sim)
        flow = Flow(0, 0, 1, 10)
        b.register_receiver(flow)
        qp = a.start_flow(flow, CongestionControl(), us(10))
        sim.run()
        assert qp.finished
        assert b.receivers[0].data_packets == 1


class TestPacing:
    def test_rate_controls_inter_packet_gap(self, sim):
        a, b = pair(sim, rate=100.0)
        times = []
        flow = Flow(0, 0, 1, 20 * DEFAULT_MTU)
        b.register_receiver(flow)
        orig = b.receive

        def spy(pkt, in_port):
            from repro.net.packet import DATA
            if pkt.kind == DATA:
                times.append(sim.now)
            orig(pkt, in_port)

        b.receive = spy

        class HalfRate(CongestionControl):
            def on_flow_start(self, cc_qp):
                cc_qp.window = float(1 << 50)
                cc_qp.rate_gbps = 50.0

        a.start_flow(flow, HalfRate(), us(10))
        sim.run()
        gaps = [t1 - t0 for t0, t1 in zip(times, times[1:])]
        expected = serialization_ps(DEFAULT_MTU, 50.0)
        # All mid-flow gaps equal the 50 Gb/s pacing interval.
        assert all(g == expected for g in gaps[1:-1])

    def test_zero_rate_throttles_fully(self, sim):
        a, b = pair(sim)

        class Stopped(CongestionControl):
            def on_flow_start(self, qp):
                qp.window = float(1 << 50)
                qp.rate_gbps = 0.0

        flow = Flow(0, 0, 1, 100_000)
        b.register_receiver(flow)
        a.start_flow(flow, Stopped(), us(10))
        sim.run(until=us(5))
        # Only the first packet (emitted before pacing kicks in) can be out.
        assert b.receivers[0].data_packets <= 1


class TestWindowClocking:
    def test_window_limits_inflight(self, sim):
        a, b = pair(sim, rate=100.0, delay=us(10))

        class OneMtu(CongestionControl):
            def on_flow_start(self, qp):
                qp.window = float(DEFAULT_MTU)
                qp.rate_gbps = qp.line_rate_gbps

        flow = Flow(0, 0, 1, 20 * DEFAULT_MTU)
        b.register_receiver(flow)
        qp = a.start_flow(flow, OneMtu(), us(10))
        sim.run(until=us(5))
        # Send-while-below-W overshoots by at most one frame, then stalls
        # until an ACK arrives (none within 5 us on a 20 us RTT wire).
        assert qp.inflight <= DEFAULT_MTU + (DEFAULT_MTU - HEADER_BYTES)

    def test_ack_opens_window(self, sim):
        a, b = pair(sim, delay=0)

        class OneMtu(CongestionControl):
            def on_flow_start(self, qp):
                qp.window = float(DEFAULT_MTU)
                qp.rate_gbps = qp.line_rate_gbps

        flow = Flow(0, 0, 1, 5 * (DEFAULT_MTU - HEADER_BYTES))
        b.register_receiver(flow)
        qp = a.start_flow(flow, OneMtu(), us(10))
        sim.run()
        assert qp.finished  # ACK clocking drained the whole flow

    def test_rate_only_mode_ignores_window(self, sim):
        cfg = TransportConfig(window_limited=False)
        a, b = pair(sim, transport=cfg, delay=us(50))

        class TinyWindowButUnlimited(CongestionControl):
            def on_flow_start(self, qp):
                qp.window = 1.0  # would block if window_limited
                qp.rate_gbps = qp.line_rate_gbps

        flow = Flow(0, 0, 1, 10 * DEFAULT_MTU)
        b.register_receiver(flow)
        qp = a.start_flow(flow, TinyWindowButUnlimited(), us(10))
        sim.run(until=us(40))  # before any ACK returns
        assert qp.snd_nxt > 2 * DEFAULT_MTU


class TestCcHooks:
    def test_on_ack_called_per_ack(self, sim):
        a, b = pair(sim)
        cc = RecordingCc()
        flow = Flow(0, 0, 1, 10_000)
        b.register_receiver(flow)
        a.start_flow(flow, cc, us(10))
        sim.run()
        assert cc.acks == b.receivers[0].data_packets

    def test_on_flow_finish_called_once(self, sim):
        a, b = pair(sim)
        cc = RecordingCc()
        flow = Flow(0, 0, 1, 1000)
        b.register_receiver(flow)
        a.start_flow(flow, cc, us(10))
        sim.run()
        assert cc.finished == 1


class TestReliability:
    def test_timeout_triggers_go_back_n(self, sim):
        # No receiver wired at all: drop everything by pointing the flow at a
        # host that swallows data?  Instead: break the wire by pausing the
        # egress, so ACKs never come and the retx timer fires.
        cfg = TransportConfig(retx_timeout_ps=us(100))
        a, b = pair(sim, transport=cfg)
        cc = RecordingCc()
        flow = Flow(0, 0, 1, 50_000)
        b.register_receiver(flow)
        b.ports[0].pause(0)  # b cannot send ACKs back
        qp = a.start_flow(flow, cc, us(10))
        sim.run(until=us(350))
        assert cc.timeouts >= 2
        assert qp.timeouts >= 2
        b.ports[0].resume(0)
        sim.run(until=us(5000))
        assert qp.finished  # recovered after the path healed

    def test_out_of_order_dup_ack(self, sim):
        a, b = pair(sim)
        flow = Flow(0, 0, 1, 10_000)
        b.register_receiver(flow)
        rqp = b.receivers[0]
        from repro.net.packet import DATA, Packet

        # Inject an out-of-order packet directly.
        rogue = Packet(DATA, flow_id=0, src=0, dst=1, seq=5000, size=1518, payload=1470)
        rqp.on_data(rogue)
        assert rqp.dup_acks_sent == 1
        assert rqp.rcv_nxt == 0

    def test_abort_stops_sending(self, sim):
        a, b = pair(sim)
        flow = Flow(0, 0, 1, 100 * DEFAULT_MTU)
        b.register_receiver(flow)
        qp = a.start_flow(flow, CongestionControl(), us(10))
        sim.run(until=us(2))
        qp.abort()
        sent_at_abort = qp.snd_nxt
        sim.run(until=us(100))
        assert qp.snd_nxt == sent_at_abort
        assert qp.finished


class TestTransportConfigValidation:
    def test_mtu_must_exceed_header(self):
        with pytest.raises(ValueError):
            TransportConfig(mtu=40, header_bytes=48)

    def test_ack_every_positive(self):
        with pytest.raises(ValueError):
            TransportConfig(ack_every=0)

    def test_max_payload(self):
        assert TransportConfig(mtu=1518, header_bytes=48).max_payload == 1470


class TestLateWiring:
    def test_receiver_registration_before_wiring_is_legal(self, sim):
        """ReceiverQP must not bind the NIC port at construction: receivers
        may be registered before the host is wired.  (start_flow has always
        required wiring first — it reads the NIC line rate.)"""
        from repro.net.host import Host
        from repro.net.port import connect

        a = Host(sim, "a", host_id=0)
        b = Host(sim, "b", host_id=1)
        flow = Flow(0, 0, 1, 5000, start_ps=us(1))
        b.register_receiver(flow)  # before any port exists
        connect(sim, a, b, 100.0, 0)
        qp = a.start_flow(flow, CongestionControl(), us(10))
        sim.run()
        assert qp.finished
        assert b.receivers[0].completed
