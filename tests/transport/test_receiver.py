"""Receiver QP: cumulative ACKs, coalescing, INT echo, N field, CNP pacing."""

from repro.cc.base import CongestionControl
from repro.net.host import Host
from repro.net.packet import ACK, CNP, DATA, INTRecord, Packet
from repro.net.port import connect
from repro.net.switch import INT_RECORD_BYTES
from repro.transport.flow import Flow
from repro.transport.sender import TransportConfig
from repro.units import ACK_SIZE, us


def pair(sim, transport=None, cnp=False, delay=0):
    a = Host(sim, "a", host_id=0, transport=transport)
    b = Host(sim, "b", host_id=1, transport=transport, cnp_enabled=cnp)
    connect(sim, a, b, 100.0, delay)
    return a, b


def collect_kinds(host):
    """Wrap host.receive to log arriving packets."""
    log = []
    orig = host.receive

    def spy(pkt, in_port):
        log.append(pkt)
        orig(pkt, in_port)

    host.receive = spy
    return log


class TestAckGeneration:
    def test_ack_per_packet_by_default(self, sim):
        a, b = pair(sim)
        acks = collect_kinds(a)
        flow = Flow(0, 0, 1, 10_000)
        b.register_receiver(flow)
        a.start_flow(flow, CongestionControl(), us(10))
        sim.run()
        n_data = b.receivers[0].data_packets
        assert sum(1 for p in acks if p.kind == ACK) == n_data

    def test_cumulative_ack_every_m(self, sim):
        cfg = TransportConfig(ack_every=4)
        a, b = pair(sim, transport=cfg)
        acks = collect_kinds(a)
        flow = Flow(0, 0, 1, 20_000)  # 14 packets
        b.register_receiver(flow)
        qp = a.start_flow(flow, CongestionControl(), us(10))
        sim.run()
        n_data = b.receivers[0].data_packets
        n_acks = sum(1 for p in acks if p.kind == ACK)
        assert n_acks < n_data
        assert qp.finished  # the final packet always forces an ACK

    def test_ack_seq_is_cumulative(self, sim):
        a, b = pair(sim)
        acks = collect_kinds(a)
        flow = Flow(0, 0, 1, 5000)
        b.register_receiver(flow)
        a.start_flow(flow, CongestionControl(), us(10))
        sim.run()
        seqs = [p.seq for p in acks if p.kind == ACK]
        assert seqs == sorted(seqs)
        assert seqs[-1] == 5000

    def test_final_ack_has_last_flag(self, sim):
        a, b = pair(sim)
        acks = collect_kinds(a)
        flow = Flow(0, 0, 1, 3000)
        b.register_receiver(flow)
        a.start_flow(flow, CongestionControl(), us(10))
        sim.run()
        ack_pkts = [p for p in acks if p.kind == ACK]
        assert ack_pkts[-1].last is True

    def test_reverse_addressing(self, sim):
        a, b = pair(sim)
        acks = collect_kinds(a)
        flow = Flow(0, 0, 1, 1000)
        b.register_receiver(flow)
        a.start_flow(flow, CongestionControl(), us(10))
        sim.run()
        ack = [p for p in acks if p.kind == ACK][0]
        assert ack.src == 1 and ack.dst == 0 and ack.flow_id == 0


class TestIntEcho:
    def test_data_int_copied_to_ack(self, sim):
        a, b = pair(sim)
        flow = Flow(0, 0, 1, 1000)
        b.register_receiver(flow)
        rqp = b.receivers[0]
        acks = collect_kinds(a)
        a.register_receiver  # silence lint
        pkt = Packet(DATA, flow_id=0, src=0, dst=1, seq=0, size=1048, payload=1000)
        pkt.last = True
        pkt.add_int(INTRecord(100.0, 5, 100, 7))
        pkt.add_int(INTRecord(100.0, 6, 200, 9))
        rqp.on_data(pkt)
        sim.run()
        ack = [p for p in acks if p.kind == ACK][0]
        assert [r.qlen for r in ack.int_records] == [7, 9]
        assert ack.size == ACK_SIZE + 2 * INT_RECORD_BYTES

    def test_n_flows_always_stamped(self, sim):
        a, b = pair(sim)
        acks = collect_kinds(a)
        flow = Flow(0, 0, 1, 1000)
        b.register_receiver(flow)
        a.start_flow(flow, CongestionControl(), us(10))
        sim.run()
        ack = [p for p in acks if p.kind == ACK][0]
        assert ack.n_flows == 1

    def test_n_flows_counts_concurrency(self, sim):
        a, b = pair(sim)
        acks = collect_kinds(a)
        f0 = Flow(0, 0, 1, 500_000)
        f1 = Flow(1, 0, 1, 500_000)
        for f in (f0, f1):
            b.register_receiver(f)
            a.start_flow(f, CongestionControl(), us(10))
        sim.run()
        assert max(p.n_flows for p in acks if p.kind == ACK) == 2


class TestCnp:
    def run_marked_flow(self, sim, cnp_enabled, n_marked=30, spacing_us=1.0):
        a, b = pair(sim, cnp=cnp_enabled)
        cnps = collect_kinds(a)
        flow = Flow(0, 0, 1, 10**6)
        b.register_receiver(flow)
        a.senders  # keep a alive
        rqp = b.receivers[0]

        def inject(i):
            pkt = Packet(DATA, flow_id=0, src=0, dst=1, seq=i * 1470, size=1518, payload=1470)
            pkt.ecn = True
            rqp.on_data(pkt)

        for i in range(n_marked):
            sim.schedule(us(i * spacing_us), lambda arg, i=i: inject(i))
        sim.run()
        return [p for p in cnps if p.kind == CNP]

    def test_cnp_sent_on_ce_mark(self, sim):
        assert len(self.run_marked_flow(sim, cnp_enabled=True)) >= 1

    def test_cnp_rate_limited_to_interval(self, sim):
        # 30 marked packets over 30 us but CNP interval is 50 us -> one CNP.
        cnps = self.run_marked_flow(sim, cnp_enabled=True)
        assert len(cnps) == 1

    def test_no_cnp_when_disabled(self, sim):
        assert self.run_marked_flow(sim, cnp_enabled=False) == []

    def test_ecn_echo_set_on_ack(self, sim):
        a, b = pair(sim)
        acks = collect_kinds(a)
        flow = Flow(0, 0, 1, 1000)
        b.register_receiver(flow)
        pkt = Packet(DATA, flow_id=0, src=0, dst=1, seq=0, size=1048, payload=1000)
        pkt.ecn = True
        pkt.last = True
        b.receivers[0].on_data(pkt)
        sim.run()
        ack = [p for p in acks if p.kind == ACK][0]
        assert ack.ecn_echo is True
