"""RoCC: switch PI controller dynamics and sender rate adoption."""

import pytest

from repro.cc.rocc import Rocc, RoccConfig, RoccPortController, install_rocc
from repro.net.node import Node
from repro.net.packet import DATA, Packet
from repro.net.port import connect
from repro.net.switch import Switch, SwitchConfig
from repro.units import KB, us


class Sink(Node):
    def __init__(self, sim, name="sink"):
        super().__init__(sim, name)

    def receive(self, pkt, in_port):
        pass


def switch_with_port(sim):
    sw = Switch(sim, "sw", SwitchConfig())
    other = Sink(sim)
    connect(sim, sw, other, 100.0, 0)
    return sw


class TestPiController:
    def test_starts_at_line_rate(self, sim):
        sw = switch_with_port(sim)
        ctrl = RoccPortController(sw, 0, RoccConfig())
        assert ctrl.fair_rate_gbps == 100.0

    def test_rate_drops_under_standing_queue(self, sim):
        sw = switch_with_port(sim)
        cfg = RoccConfig(update_interval_ps=us(100))
        ctrl = RoccPortController(sw, 0, cfg)
        ctrl.start()
        sw.ports[0].pause(0)
        for i in range(400):  # ~600 KB standing queue
            sw.ports[0].enqueue(Packet(DATA, flow_id=i, src=0, dst=1, size=1518, payload=1470))
        sim.run(until=us(1000))
        assert ctrl.fair_rate_gbps < 100.0

    def test_rate_recovers_when_idle(self, sim):
        sw = switch_with_port(sim)
        cfg = RoccConfig(update_interval_ps=us(100), recover_gbps=5.0)
        ctrl = RoccPortController(sw, 0, cfg)
        ctrl.fair_rate_gbps = 50.0
        ctrl.start()
        sim.run(until=us(1100))  # 11 idle updates * 5G
        assert ctrl.fair_rate_gbps == pytest.approx(100.0)

    def test_rate_floor(self, sim):
        sw = switch_with_port(sim)
        cfg = RoccConfig(update_interval_ps=us(50), min_rate_gbps=2.0)
        ctrl = RoccPortController(sw, 0, cfg)
        ctrl.start()
        sw.ports[0].pause(0)
        for i in range(3000):
            sw.ports[0].enqueue(Packet(DATA, flow_id=i, src=0, dst=1, size=1518, payload=1470))
        sim.run(until=us(20_000))
        assert ctrl.fair_rate_gbps >= 2.0

    def test_convergence_is_slow_ms_scale(self, sim):
        """The paper's point: RoCC needs ms-level time to move the rate."""
        sw = switch_with_port(sim)
        ctrl = RoccPortController(sw, 0, RoccConfig())
        ctrl.start()
        sw.ports[0].pause(0)
        for i in range(350):  # ~530 KB
            sw.ports[0].enqueue(Packet(DATA, flow_id=i, src=0, dst=1, size=1518, payload=1470))
        sim.run(until=us(50))  # well under one update interval
        assert ctrl.fair_rate_gbps == 100.0  # nothing happened yet

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RoccConfig(q_ref_bytes=-1)
        with pytest.raises(ValueError):
            RoccConfig(update_interval_ps=0)


class TestInstall:
    def test_install_covers_every_port(self, sim):
        sw = Switch(sim, "sw", SwitchConfig())
        for i in range(3):
            connect(sim, sw, Sink(sim, f"s{i}"), 100.0, 0)
        ctrls = install_rocc([sw])
        assert len(ctrls) == 3
        # Dense list: one controller slot per port, all populated.
        assert len(sw.port_controllers) == 3
        assert all(c is not None for c in sw.port_controllers)


class TestSender:
    def test_adopts_advertised_rate(self):
        from cc_helpers import FakeQP, make_ack

        cc = Rocc()
        qp = FakeQP()
        cc.on_flow_start(qp)
        ack = make_ack()
        ack.rocc_rate_gbps = 42.0
        cc.on_ack(qp, ack)
        assert qp.rate_gbps == 42.0

    def test_keeps_rate_without_stamp(self):
        from cc_helpers import FakeQP, make_ack

        cc = Rocc()
        qp = FakeQP()
        cc.on_flow_start(qp)
        cc.on_ack(qp, make_ack())
        assert qp.rate_gbps == 100.0

    def test_never_exceeds_line_rate(self):
        from cc_helpers import FakeQP, make_ack

        cc = Rocc()
        qp = FakeQP()
        cc.on_flow_start(qp)
        ack = make_ack()
        ack.rocc_rate_gbps = 400.0
        cc.on_ack(qp, ack)
        assert qp.rate_gbps == 100.0
