"""FNCC: ACK-path INT reversal and the LHCS jump of Alg. 2."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from cc_helpers import FakeQP, make_ack  # noqa: E402

from repro.cc.fncc import Fncc, FnccConfig
from repro.cc.hpcc import Hpcc
from repro.units import us


def started(cfg=None, rate=100.0):
    cc = Fncc(cfg)
    qp = FakeQP(rate_gbps=rate)
    cc.on_flow_start(qp)
    return cc, qp


def feed(cc, qp, records_sequence, n_flows=1):
    for i, recs in enumerate(records_sequence):
        qp.snd_nxt += 10_000
        cc.on_ack(
            qp,
            make_ack(seq=1 + i * 10_000, records=recs, n_flows=n_flows, reverse=True),
        )


def congested_last_hop(k, q=600_000):
    """Request-order records: hop0 idle, hop1 (last) congested."""
    return [
        {"B": 100.0, "ts": us(1 + k), "tx": 12_500 * k, "q": 0},
        {"B": 100.0, "ts": us(1 + k), "tx": 12_500 * k, "q": q},
    ]


def congested_first_hop(k, q=600_000):
    return [
        {"B": 100.0, "ts": us(1 + k), "tx": 12_500 * k, "q": q},
        {"B": 100.0, "ts": us(1 + k), "tx": 12_500 * k, "q": 0},
    ]


class TestConfig:
    def test_alpha_must_exceed_one(self):
        with pytest.raises(ValueError):
            FnccConfig(alpha=1.0)
        with pytest.raises(ValueError):
            FnccConfig(alpha=0.9)

    def test_beta_range(self):
        with pytest.raises(ValueError):
            FnccConfig(beta=0.0)
        with pytest.raises(ValueError):
            FnccConfig(beta=1.5)

    def test_inherits_hpcc_knobs(self):
        cfg = FnccConfig(eta=0.9, max_stage=4)
        assert cfg.eta == 0.9 and cfg.max_stage == 4

    def test_defaults_match_paper(self):
        cfg = FnccConfig()
        assert cfg.alpha == pytest.approx(1.05)
        assert cfg.beta == pytest.approx(0.9)
        assert cfg.lhcs_enabled


class TestRecordOrdering:
    def test_records_reversed_to_request_order(self):
        cc, qp = started()
        # Return-path order: last request hop first.  make_ack(reverse=True)
        # stores request-order input reversed, so order_records must undo it.
        ack = make_ack(records=[{"B": 100.0, "ts": 1, "tx": 0, "q": 0},
                                {"B": 200.0, "ts": 2, "tx": 0, "q": 0}], reverse=True)
        ordered = cc.order_records(ack)
        assert [r.bandwidth_gbps for r in ordered] == [100.0, 200.0]

    def test_no_records_passthrough(self):
        cc, qp = started()
        assert cc.order_records(make_ack(records=None)) is None


class TestLhcs:
    def test_jump_to_fair_share_on_last_hop_congestion(self):
        cc, qp = started()
        feed(cc, qp, [congested_last_hop(k) for k in range(6)], n_flows=4)
        # The jump target is B*T*beta/N = 150_000*0.9/4 = 33_750 (ComputeWind
        # then keeps draining Wc below it while U stays above eta).
        assert cc.lhcs_activations >= 1
        assert cc.last_lhcs_target == pytest.approx(150_000 * 0.9 / 4)
        assert cc.wc <= cc.last_lhcs_target

    def test_no_jump_when_congestion_not_last_hop(self):
        cc, qp = started()
        feed(cc, qp, [congested_first_hop(k) for k in range(6)], n_flows=4)
        assert cc.lhcs_activations == 0

    def test_no_jump_below_alpha(self):
        cc, qp = started()
        # Mild last-hop load: u slightly above 1 but below alpha=1.05 needs
        # q/(B*T) < 0.05 -> q < 7.5 KB.
        feed(cc, qp, [congested_last_hop(k, q=5_000) for k in range(6)], n_flows=4)
        assert cc.lhcs_activations == 0

    def test_disabled_lhcs_never_jumps(self):
        cc, qp = started(FnccConfig(lhcs_enabled=False))
        feed(cc, qp, [congested_last_hop(k) for k in range(6)], n_flows=4)
        assert cc.lhcs_activations == 0

    def test_n_floor_of_one(self):
        cc, qp = started()
        feed(cc, qp, [congested_last_hop(k) for k in range(6)], n_flows=0)
        # N=0 on the wire is treated as 1, never a division blowup.
        assert cc.wc <= cc.w_init

    def test_beta_scales_target(self):
        lo, qlo = started(FnccConfig(beta=0.5))
        hi, qhi = started(FnccConfig(beta=0.95))
        feed(lo, qlo, [congested_last_hop(k) for k in range(6)], n_flows=2)
        feed(hi, qhi, [congested_last_hop(k) for k in range(6)], n_flows=2)
        assert lo.last_lhcs_target < hi.last_lhcs_target

    def test_single_hop_path_is_last_hop(self):
        cc, qp = started()
        recs = lambda k: [{"B": 100.0, "ts": us(1 + k), "tx": 12_500 * k, "q": 600_000}]
        feed(cc, qp, [recs(k) for k in range(6)], n_flows=2)
        assert cc.lhcs_activations >= 1


class TestInteroperability:
    def test_same_int_same_behavior_as_hpcc_without_lhcs(self):
        """With LHCS off and identically ordered INT, FNCC == HPCC."""
        fncc, qf = started(FnccConfig(lhcs_enabled=False))
        hpcc = Hpcc()
        qh = FakeQP()
        hpcc.on_flow_start(qh)
        seq = [congested_last_hop(k) for k in range(8)]
        for i, recs in enumerate(seq):
            qf.snd_nxt += 10_000
            qh.snd_nxt += 10_000
            fncc.on_ack(qf, make_ack(seq=1 + i * 10_000, records=recs, reverse=True))
            hpcc.on_ack(qh, make_ack(seq=1 + i * 10_000, records=recs))
        assert qf.window == pytest.approx(qh.window)
        assert qf.rate_gbps == pytest.approx(qh.rate_gbps)
