"""Timely and Swift (related-work extensions): delay-driven dynamics."""

import pytest

from cc_helpers import FakeQP, make_ack

from repro.cc.swift import Swift, SwiftConfig
from repro.cc.timely import Timely, TimelyConfig
from repro.units import us


def ack_with_rtt(qp, rtt_ps, n_hops=1):
    """An ACK whose echoed timestamp implies the given RTT."""
    qp.sim.now += rtt_ps  # advance the fake clock
    a = make_ack()
    a.echo_sent_ts = qp.sim.now - rtt_ps
    if n_hops:
        a.int_records = []  # n_hops property reads the list
    return a


class TestTimely:
    def started(self, cfg=None):
        cc = Timely(cfg)
        qp = FakeQP()
        cc.on_flow_start(qp)
        return cc, qp

    def test_starts_at_line_rate(self):
        cc, qp = self.started()
        assert qp.rate_gbps == 100.0

    def test_additive_increase_below_t_low(self):
        cfg = TimelyConfig(add_step_gbps=2.0)
        cc, qp = self.started(cfg)
        qp.rate_gbps = 50.0
        cc.on_ack(qp, ack_with_rtt(qp, us(5)))  # seeds prev_rtt
        cc.on_ack(qp, ack_with_rtt(qp, us(5)))
        assert qp.rate_gbps == pytest.approx(52.0)

    def test_multiplicative_decrease_above_t_high(self):
        cc, qp = self.started()
        cc.on_ack(qp, ack_with_rtt(qp, us(60)))
        cc.on_ack(qp, ack_with_rtt(qp, us(80)))
        assert qp.rate_gbps < 100.0

    def test_gradient_decrease_in_band(self):
        cc, qp = self.started()
        # RTT rising within [t_low, t_high]: positive gradient -> decrease.
        cc.on_ack(qp, ack_with_rtt(qp, us(20)))
        for rtt in (25, 30, 35, 40):
            cc.on_ack(qp, ack_with_rtt(qp, us(rtt)))
        assert qp.rate_gbps < 100.0

    def test_rate_floor(self):
        cfg = TimelyConfig(min_rate_gbps=1.0)
        cc, qp = self.started(cfg)
        for _ in range(100):
            cc.on_ack(qp, ack_with_rtt(qp, us(500)))
        assert qp.rate_gbps >= 1.0

    def test_ignores_acks_without_timestamp(self):
        cc, qp = self.started()
        cc.on_ack(qp, make_ack())  # echo_sent_ts == 0
        assert qp.rate_gbps == 100.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TimelyConfig(t_low_ps=us(50), t_high_ps=us(10))
        with pytest.raises(ValueError):
            TimelyConfig(ewma_alpha=0.0)


class TestSwift:
    def started(self, cfg=None):
        cc = Swift(cfg)
        qp = FakeQP()
        cc.on_flow_start(qp)
        return cc, qp

    def test_starts_at_bdp(self):
        cc, qp = self.started()
        assert qp.window == pytest.approx(150_000)

    def test_increase_below_target(self):
        cc, qp = self.started()
        qp.window = 50_000.0
        w0 = qp.window
        cc.on_ack(qp, ack_with_rtt(qp, us(13)))  # ~base RTT: below target
        assert qp.window > w0

    def test_decrease_above_target(self):
        cc, qp = self.started()
        cc.on_ack(qp, ack_with_rtt(qp, us(500)))
        assert qp.window < 150_000

    def test_at_most_one_decrease_per_rtt(self):
        cc, qp = self.started()
        cc.on_ack(qp, ack_with_rtt(qp, us(500)))
        w1 = qp.window
        # Immediately after (clock barely advances): no second MD.
        a = make_ack()
        a.echo_sent_ts = qp.sim.now - us(500)
        cc.on_ack(qp, a)
        assert qp.window == pytest.approx(w1, rel=0.05)

    def test_window_floor(self):
        cfg = SwiftConfig(min_window_bytes=400.0)
        cc, qp = self.started(cfg)
        for i in range(100):
            qp.sim.now += us(20)
            a = make_ack()
            a.echo_sent_ts = qp.sim.now - us(2000)
            cc.on_ack(qp, a)
        assert qp.window >= 400.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SwiftConfig(base_target_ps=0)
        with pytest.raises(ValueError):
            SwiftConfig(max_mdf=1.0)
