"""HPCC's Alg. 3 mechanics against hand-computed INT sequences."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from cc_helpers import FakeQP, make_ack  # noqa: E402

from repro.cc.hpcc import Hpcc, HpccConfig
from repro.units import us


def started(cfg=None, rate=100.0):
    cc = Hpcc(cfg)
    qp = FakeQP(rate_gbps=rate)
    cc.on_flow_start(qp)
    return cc, qp


def feed(cc, qp, records_sequence, seq_start=1, n_flows=1):
    """Feed a sequence of per-ACK INT record lists (request order)."""
    for i, recs in enumerate(records_sequence):
        qp.snd_nxt += 10_000
        cc.on_ack(qp, make_ack(seq=seq_start + i * 10_000, records=recs, n_flows=n_flows))


class TestInit:
    def test_window_starts_at_bdp(self):
        cc, qp = started()
        # 100 Gb/s * 12 us = 150 KB.
        assert qp.window == pytest.approx(150_000)
        assert qp.rate_gbps == pytest.approx(100.0)

    def test_wai_default_is_headroom_share(self):
        cc, qp = started()
        expected = 150_000 * 0.05 / 8
        assert cc.wai == pytest.approx(expected)

    def test_explicit_wai(self):
        cc, qp = started(HpccConfig(wai_bytes=500.0))
        assert cc.wai == 500.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HpccConfig(eta=0.0)
        with pytest.raises(ValueError):
            HpccConfig(eta=1.5)
        with pytest.raises(ValueError):
            HpccConfig(max_stage=0)
        with pytest.raises(ValueError):
            HpccConfig(wai_flows=0)


class TestMeasureInFlight:
    def test_first_ack_only_seeds(self):
        cc, qp = started()
        w0 = qp.window
        cc.on_ack(qp, make_ack(seq=1, records=[{"B": 100.0, "ts": 0, "tx": 0, "q": 0}]))
        assert qp.window == w0  # no update on the seeding ACK
        assert cc.prev_records is not None

    def test_congested_hop_drives_u_up(self):
        cc, qp = started()
        # Hop at full rate with a deep queue: u > 1.
        t1, t2 = us(1), us(2)
        feed(
            cc,
            qp,
            [
                [{"B": 100.0, "ts": t1, "tx": 0, "q": 300_000}],
                [{"B": 100.0, "ts": t2, "tx": 12_500, "q": 300_000}],
            ],
        )
        # txRate = 12.5KB/us = 100Gb/s -> u = q/(B*T) + 1 = 300K/150K + 1 = 3.
        assert cc.hop_u[0] == pytest.approx(3.0)
        assert qp.window < 150_000  # window came down

    def test_idle_hop_u_near_zero(self):
        cc, qp = started()
        feed(
            cc,
            qp,
            [
                [{"B": 100.0, "ts": us(1), "tx": 0, "q": 0}],
                [{"B": 100.0, "ts": us(2), "tx": 0, "q": 0}],
            ],
        )
        assert cc.hop_u[0] == pytest.approx(0.0)

    def test_max_across_hops_wins(self):
        cc, qp = started()
        feed(
            cc,
            qp,
            [
                [
                    {"B": 100.0, "ts": us(1), "tx": 0, "q": 0},
                    {"B": 100.0, "ts": us(1), "tx": 0, "q": 400_000},
                ],
                [
                    {"B": 100.0, "ts": us(2), "tx": 0, "q": 0},
                    {"B": 100.0, "ts": us(2), "tx": 12_500, "q": 400_000},
                ],
            ],
        )
        assert max(cc.hop_u) == cc.hop_u[1]
        assert cc.hop_u[1] > 3.0

    def test_min_qlen_filters_transients(self):
        cc, qp = started()
        # Queue spikes then vanishes: min(q_now, q_prev)=0 suppresses it.
        feed(
            cc,
            qp,
            [
                [{"B": 100.0, "ts": us(1), "tx": 0, "q": 0}],
                [{"B": 100.0, "ts": us(2), "tx": 0, "q": 900_000}],
                [{"B": 100.0, "ts": us(3), "tx": 0, "q": 0}],
            ],
        )
        # Never both-high, so queue term never contributed.
        assert cc.u_ewma < 1.0

    def test_ewma_smooths(self):
        cc, qp = started()
        # tau == T -> full replacement; shorter tau -> partial.
        cc.u_ewma = 1.0
        recs0 = [{"B": 100.0, "ts": 0, "tx": 0, "q": 0}]
        recs1 = [{"B": 100.0, "ts": us(1.2), "tx": 0, "q": 0}]  # tau = 1.2us << T
        feed(cc, qp, [recs0, recs1])
        assert 0.8 < cc.u_ewma < 1.0  # pulled toward 0 but only by tau/T


class TestComputeWind:
    def test_multiplicative_decrease_when_overloaded(self):
        cc, qp = started()
        # Sustained congestion: queue 600 KB at line rate for many ACKs so
        # the EWMA crosses eta and the MI branch fires.
        seq = [
            [{"B": 100.0, "ts": us(1 + k), "tx": 12_500 * k, "q": 600_000}]
            for k in range(10)
        ]
        feed(cc, qp, seq)
        # u -> q/(B*T) + 1 = 5; W = Wc/(U/eta) + wai << Winit.
        assert cc.u_ewma > 1.0
        assert qp.window < 0.5 * cc.w_init

    def test_additive_increase_stages_then_mi(self):
        cfg = HpccConfig(max_stage=3)
        cc, qp = started(cfg)
        cc.u_ewma = 0.5  # below eta: AI branch
        cc.wc = 100_000.0  # below Winit so AI steps are not clamped away
        w0 = cc.wc
        idle = [{"B": 100.0, "ts": us(1), "tx": 0, "q": 0}]
        later = lambda k: [{"B": 100.0, "ts": us(1 + k), "tx": 0, "q": 0}]
        cc.on_ack(qp, make_ack(seq=1, records=idle))
        for k in range(1, 4):  # three AI steps (maxStage)
            qp.snd_nxt += 1000
            cc.on_ack(qp, make_ack(seq=qp.snd_nxt, records=later(k)))
        assert cc.inc_stage == 3
        assert cc.wc == pytest.approx(w0 + 3 * cc.wai, rel=1e-6)
        # Next update must take the MI branch and reset the stage.
        qp.snd_nxt += 1000
        cc.on_ack(qp, make_ack(seq=qp.snd_nxt, records=later(4)))
        assert cc.inc_stage == 0

    def test_wc_only_commits_past_last_update_seq(self):
        cc, qp = started()
        cc.u_ewma = 0.5
        idle = [{"B": 100.0, "ts": us(1), "tx": 0, "q": 0}]
        cc.on_ack(qp, make_ack(seq=1, records=idle))
        qp.snd_nxt = 50_000
        cc.on_ack(qp, make_ack(seq=10, records=[{"B": 100.0, "ts": us(2), "tx": 0, "q": 0}]))
        assert cc.last_update_seq == 50_000
        wc_after = cc.wc
        # ACKs below lastUpdateSeq adjust W but not Wc.
        cc.on_ack(qp, make_ack(seq=20_000, records=[{"B": 100.0, "ts": us(3), "tx": 0, "q": 0}]))
        assert cc.wc == wc_after

    def test_window_clamped_to_winit(self):
        cc, qp = started()
        cc.u_ewma = 0.01  # near idle -> huge MI step
        cc.inc_stage = 99  # force MI branch
        idle = [{"B": 100.0, "ts": us(1), "tx": 0, "q": 0}]
        cc.on_ack(qp, make_ack(seq=1, records=idle))
        qp.snd_nxt += 1000
        cc.on_ack(qp, make_ack(seq=qp.snd_nxt, records=[{"B": 100.0, "ts": us(2), "tx": 0, "q": 0}]))
        assert qp.window <= cc.w_init

    def test_window_floor(self):
        cfg = HpccConfig(min_window_bytes=1518.0)
        cc, qp = started(cfg)
        cc.u_ewma = 50.0  # catastophic congestion signal
        busy = lambda k: [{"B": 100.0, "ts": us(k), "tx": 12_500 * k, "q": 10**7}]
        cc.on_ack(qp, make_ack(seq=1, records=busy(1)))
        qp.snd_nxt += 1000
        cc.on_ack(qp, make_ack(seq=qp.snd_nxt, records=busy(2)))
        assert qp.window >= 1518.0

    def test_rate_tracks_window(self):
        cc, qp = started()
        cc.u_ewma = 0.5
        idle = [{"B": 100.0, "ts": us(1), "tx": 0, "q": 0}]
        cc.on_ack(qp, make_ack(seq=1, records=idle))
        qp.snd_nxt += 1000
        cc.on_ack(qp, make_ack(seq=qp.snd_nxt, records=[{"B": 100.0, "ts": us(2), "tx": 0, "q": 0}]))
        assert qp.rate_gbps == pytest.approx(qp.window / qp.base_rtt_ps * 8000.0)


class TestRobustness:
    def test_ack_without_int_ignored(self):
        cc, qp = started()
        w0 = qp.window
        cc.on_ack(qp, make_ack(seq=1, records=None))
        assert qp.window == w0

    def test_hop_count_change_reseeds(self):
        cc, qp = started()
        cc.on_ack(qp, make_ack(seq=1, records=[{"B": 100.0, "ts": 0, "tx": 0, "q": 0}]))
        two_hops = [
            {"B": 100.0, "ts": us(1), "tx": 0, "q": 0},
            {"B": 100.0, "ts": us(1), "tx": 0, "q": 0},
        ]
        w0 = qp.window
        cc.on_ack(qp, make_ack(seq=2, records=two_hops))  # reseed, no update
        assert qp.window == w0
        assert len(cc.prev_records) == 2

    def test_same_timestamp_degenerate_dt(self):
        cc, qp = started()
        recs = [{"B": 100.0, "ts": us(1), "tx": 0, "q": 0}]
        cc.on_ack(qp, make_ack(seq=1, records=recs))
        qp.snd_nxt += 1000
        # Identical timestamp: txRate falls back to line rate, no crash.
        cc.on_ack(qp, make_ack(seq=qp.snd_nxt, records=recs))
        assert qp.window > 0
