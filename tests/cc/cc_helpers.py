"""Fakes for unit-testing CC algorithms without a network."""

from repro.net.packet import ACK, INTRecord, Packet
from repro.units import us


class FakeSim:
    def __init__(self):
        # Start the clock away from zero: echoed timestamps of 0 mean
        # "no timestamp" to the delay-based schemes.
        self.now = us(1000)


class FakeQP:
    """Just the attributes the CC hooks touch."""

    def __init__(self, rate_gbps=100.0, base_rtt_us=12.0):
        self.sim = FakeSim()
        self.base_rtt_ps = us(base_rtt_us)
        self.line_rate_gbps = rate_gbps
        self.window = 0.0
        self.rate_gbps = 0.0
        self.snd_nxt = 0
        self.snd_una = 0
        self.finished = False

    @property
    def bdp(self):
        return self.line_rate_gbps / 8000.0 * self.base_rtt_ps


def make_ack(seq=0, records=None, n_flows=1, reverse=False):
    """An ACK with INT records.  ``records`` is a list of dicts with keys
    B (Gbps), ts, tx, q.  ``reverse=True`` stores them in return-path order
    (last request hop first) the way FNCC switches produce them."""
    ack = Packet(ACK, flow_id=0, src=1, dst=0, seq=seq, size=64)
    ack.n_flows = n_flows
    if records is not None:
        recs = [INTRecord(r["B"], r["ts"], r["tx"], r["q"]) for r in records]
        ack.int_records = recs[::-1] if reverse else recs
    return ack


def idle_hop(bw=100.0, ts=0, tx=0):
    return {"B": bw, "ts": ts, "tx": tx, "q": 0}


def busy_hop(bw=100.0, ts=0, tx=0, q=500_000):
    return {"B": bw, "ts": ts, "tx": tx, "q": q}
