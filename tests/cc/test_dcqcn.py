"""DCQCN rate state machine: CNP reaction, alpha dynamics, increase phases."""

import pytest

from repro.cc.dcqcn import Dcqcn, DcqcnConfig
from repro.cc.base import UNLIMITED_WINDOW
from repro.net.host import Host
from repro.net.packet import ACK, Packet
from repro.net.port import connect
from repro.transport.flow import Flow
from repro.units import MB, us


def started(sim, cfg=None):
    """A real QP on a direct wire (DCQCN needs sim timers)."""
    a = Host(sim, "a", host_id=0)
    b = Host(sim, "b", host_id=1)
    connect(sim, a, b, 100.0, 0)
    flow = Flow(0, 0, 1, 100 * MB)
    b.register_receiver(flow)
    cc = Dcqcn(cfg)
    qp = a.start_flow(flow, cc, us(10))
    return cc, qp, a, b


class TestInit:
    def test_starts_at_line_rate_unlimited_window(self, sim):
        cc, qp, a, b = started(sim)
        sim.run(until=1)
        assert qp.rate_gbps == 100.0
        assert qp.window == UNLIMITED_WINDOW
        assert cc.alpha == 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DcqcnConfig(g=0.0)
        with pytest.raises(ValueError):
            DcqcnConfig(g=1.0)
        with pytest.raises(ValueError):
            DcqcnConfig(stage_threshold=0)


class TestCnpReaction:
    def test_rate_cut_by_half_alpha(self, sim):
        cc, qp, a, b = started(sim)
        sim.run(until=1)
        cc.on_cnp(qp)
        # alpha was 1 -> Rc = 100 * (1 - 0.5) = 50.
        assert qp.rate_gbps == pytest.approx(50.0)
        assert cc.rt == pytest.approx(100.0)

    def test_alpha_rises_on_cnp(self, sim):
        cc, qp, a, b = started(sim)
        sim.run(until=1)
        cc.alpha = 0.5
        cc.on_cnp(qp)
        g = cc.config.g
        assert cc.alpha == pytest.approx((1 - g) * 0.5 + g)

    def test_rate_floor(self, sim):
        cc, qp, a, b = started(sim)
        sim.run(until=1)
        for _ in range(200):
            cc.on_cnp(qp)
        assert qp.rate_gbps >= cc.config.min_rate_gbps

    def test_cnp_resets_increase_state(self, sim):
        cc, qp, a, b = started(sim)
        sim.run(until=1)
        cc.time_stage = 7
        cc.byte_stage = 3
        cc.on_cnp(qp)
        assert cc.time_stage == 0 and cc.byte_stage == 0


class TestAlphaDecay:
    def test_alpha_decays_without_cnps(self, sim):
        cc, qp, a, b = started(sim)
        sim.run(until=us(300))
        # ~5 alpha-timer periods of 55us each.
        assert cc.alpha < (1 - cc.config.g) ** 4 + 1e-9


class TestRateRecovery:
    def test_fast_recovery_halves_toward_rt(self, sim):
        cc, qp, a, b = started(sim)
        sim.run(until=1)
        cc.on_cnp(qp)  # Rc=50, Rt=100
        r0 = qp.rate_gbps
        sim.run(until=us(120))  # two timer periods -> two FR steps
        assert qp.rate_gbps > r0
        assert qp.rate_gbps <= 100.0

    def test_rate_converges_back_to_line(self, sim):
        cc, qp, a, b = started(sim)
        sim.run(until=1)
        cc.on_cnp(qp)
        sim.run(until=us(3000))
        assert qp.rate_gbps == pytest.approx(100.0, rel=0.05)

    def test_hyper_increase_engages_past_threshold(self, sim):
        cfg = DcqcnConfig(rhai_gbps=10.0)
        cc, qp, a, b = started(sim, cfg)
        sim.run(until=1)
        cc.on_cnp(qp)
        cc.time_stage = cfg.stage_threshold
        cc.byte_stage = cfg.stage_threshold
        rt0 = cc.rt
        cc._increase(qp)
        assert cc.rt == pytest.approx(min(100.0, rt0 + 10.0))

    def test_additive_increase_single_threshold(self, sim):
        cfg = DcqcnConfig(rai_gbps=1.0)
        cc, qp, a, b = started(sim, cfg)
        sim.run(until=1)
        cc.on_cnp(qp)
        cc.time_stage = cfg.stage_threshold
        cc.byte_stage = 0
        rt0 = cc.rt
        cc._increase(qp)
        assert cc.rt == pytest.approx(min(100.0, rt0 + 1.0))

    def test_byte_counter_drives_stage(self, sim):
        cfg = DcqcnConfig(byte_counter=100_000)
        cc, qp, a, b = started(sim, cfg)
        sim.run(until=us(50))  # ~400 KB acked at line rate
        assert cc.byte_stage >= 1


class TestLifecycle:
    def test_timers_cancelled_on_finish(self, sim):
        a = Host(sim, "a", host_id=0)
        b = Host(sim, "b", host_id=1)
        connect(sim, a, b, 100.0, 0)
        flow = Flow(0, 0, 1, 10_000)
        b.register_receiver(flow)
        cc = Dcqcn()
        a.start_flow(flow, cc, us(10))
        sim.run()
        assert not cc._alpha_timer.armed
        assert not cc._inc_timer.armed

    def test_ecn_to_cnp_to_slowdown_end_to_end(self, sim):
        """Full loop: CE-marked data -> receiver CNP -> sender rate cut."""
        a = Host(sim, "a", host_id=0, cnp_enabled=True)
        b = Host(sim, "b", host_id=1, cnp_enabled=True)
        connect(sim, a, b, 100.0, 0)
        flow = Flow(0, 0, 1, 50 * MB)
        b.register_receiver(flow)
        cc = Dcqcn()
        qp = a.start_flow(flow, cc, us(10))
        # Force-mark every data packet on arrival (the paced NIC queue never
        # backs up on a clean wire, so RED alone would not mark anything).
        orig = b.receive

        def mark_all(pkt, in_port):
            from repro.net.packet import DATA

            if pkt.kind == DATA:
                pkt.ecn = True
            orig(pkt, in_port)

        b.receive = mark_all
        sim.run(until=us(200))
        assert cc.cnps_received >= 1
        assert qp.rate_gbps < 100.0
