"""CC registry: name resolution, parameter forwarding, per-flow instances."""

import pytest

from repro.cc import ALGORITHMS, make_cc_factory
from repro.cc.dcqcn import Dcqcn
from repro.cc.fncc import Fncc
from repro.cc.hpcc import Hpcc
from repro.cc.rocc import Rocc


class TestRegistry:
    def test_all_expected_algorithms_present(self):
        assert set(ALGORITHMS) == {"hpcc", "fncc", "dcqcn", "rocc", "timely", "swift"}

    def test_factory_builds_right_class(self):
        for name, cls in [("hpcc", Hpcc), ("fncc", Fncc), ("dcqcn", Dcqcn), ("rocc", Rocc)]:
            cc = make_cc_factory(name)(None, None)
            assert isinstance(cc, cls)

    def test_case_insensitive(self):
        assert isinstance(make_cc_factory("FNCC")(None, None), Fncc)

    def test_fresh_instance_per_flow(self):
        factory = make_cc_factory("fncc")
        assert factory(None, None) is not factory(None, None)

    def test_params_forwarded_to_config(self):
        cc = make_cc_factory("fncc", beta=0.8, alpha=1.2)(None, None)
        assert cc.config.beta == 0.8
        assert cc.config.alpha == 1.2

    def test_shared_config_across_instances(self):
        factory = make_cc_factory("hpcc", eta=0.9)
        a, b = factory(None, None), factory(None, None)
        assert a.config is b.config

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown CC"):
            make_cc_factory("tcp-reno")

    def test_bad_param_rejected(self):
        with pytest.raises(TypeError):
            make_cc_factory("hpcc", nonsense=1)

    def test_rocc_takes_no_params(self):
        with pytest.raises(ValueError):
            make_cc_factory("rocc", q_ref=5)
