"""The CC × LB matrix experiment: determinism, the expected ordering on
the fat-tree permutation scenario, and full-sweep plumbing."""

import pytest

from repro.experiments.lbmatrix import (
    CCS,
    LBS,
    TOPOS,
    WORKLOADS,
    format_matrix,
    run_lb_cell,
    run_lbmatrix,
)


class TestDeterminism:
    @pytest.mark.parametrize("lb", LBS)
    def test_same_seed_identical_fcts(self, lb):
        a = run_lb_cell(lb, "fncc", seed=5)
        b = run_lb_cell(lb, "fncc", seed=5)
        fp = a.fct_fingerprint()
        assert fp == b.fct_fingerprint()
        assert len(fp) == a.n_flows  # every permutation flow completed

    def test_different_seeds_differ(self):
        a = run_lb_cell("spray", "fncc", seed=1)
        b = run_lb_cell("spray", "fncc", seed=2)
        assert a.fct_fingerprint() != b.fct_fingerprint()


class TestPermutationOrdering:
    """The acceptance property: spreading beats per-flow hashing when ECMP
    collisions stack elephants onto shared uplinks."""

    @pytest.fixture(scope="class")
    def cells(self):
        return {
            lb: run_lb_cell(lb, "fncc", topo_name="fattree", workload="permutation", seed=1)
            for lb in LBS
        }

    def test_all_complete(self, cells):
        for lb, cell in cells.items():
            assert cell.completed == cell.n_flows, lb

    def test_spray_beats_ecmp_mean_fct(self, cells):
        assert cells["spray"].mean_fct_us < cells["ecmp"].mean_fct_us

    def test_flowlet_beats_ecmp_mean_fct(self, cells):
        assert cells["flowlet"].mean_fct_us < cells["ecmp"].mean_fct_us

    def test_spray_near_ideal(self, cells):
        # Per-packet spraying over a 1:1 fat-tree should cut mean slowdown
        # far below collision-prone per-flow ECMP.
        assert cells["spray"].mean_slowdown < 0.75 * cells["ecmp"].mean_slowdown

    def test_conweave_completes_with_reroutes_possible(self, cells):
        cell = cells["conweave"]
        assert cell.completed == cell.n_flows
        # Epoch machinery must not corrupt FCTs: no flow slower than a
        # generous multiple of the ECMP mean.
        assert cell.mean_fct_us < 3 * cells["ecmp"].mean_fct_us


class TestSweepPlumbing:
    def test_small_sweep_covers_keys(self):
        cells = run_lbmatrix(
            lbs=("ecmp", "spray"),
            ccs=("fncc",),
            topos=("fattree",),
            workloads=("permutation",),
            seed=1,
        )
        assert set(cells) == {
            ("fattree", "permutation", "ecmp", "fncc"),
            ("fattree", "permutation", "spray", "fncc"),
        }
        out = format_matrix(cells, "mean_fct_us")
        assert "fattree / permutation" in out
        assert "spray" in out

    def test_jellyfish_websearch_cell(self):
        cell = run_lb_cell(
            "flowlet",
            "dcqcn",
            topo_name="jellyfish",
            workload="websearch",
            n_flows=30,
            seed=1,
        )
        assert cell.completed == 30

    def test_matrix_constants(self):
        assert set(LBS) == {"ecmp", "spray", "flowlet", "conweave"}
        assert set(CCS) == {"dcqcn", "hpcc", "fncc"}
        assert set(TOPOS) == {"fattree", "jellyfish"}
        assert set(WORKLOADS) == {"permutation", "websearch"}

    def test_bad_names_rejected(self):
        with pytest.raises(ValueError):
            run_lb_cell("ecmp", "fncc", topo_name="torus")
        with pytest.raises(ValueError):
            run_lb_cell("ecmp", "fncc", workload="uniform")
