"""Experiment harness: CC environment wiring and the per-figure runners
(scaled down so the whole file stays test-suite fast)."""

import pytest

from repro.cc.dcqcn import Dcqcn
from repro.cc.fncc import Fncc
from repro.experiments.common import build_cc_env, quick_dumbbell, run_microbench
from repro.net.switch import IntMode
from repro.units import KB, us


class TestBuildCcEnv:
    def test_fncc_gets_fncc_int_mode(self):
        env = build_cc_env("fncc")
        assert env.switch_config.int_mode is IntMode.FNCC
        assert not env.cnp_enabled
        assert isinstance(env.cc_factory(None, None), Fncc)

    def test_hpcc_gets_hpcc_int_mode(self):
        assert build_cc_env("hpcc").switch_config.int_mode is IntMode.HPCC

    def test_dcqcn_gets_ecn_and_cnp(self):
        env = build_cc_env("dcqcn")
        assert env.switch_config.ecn is not None
        assert env.cnp_enabled
        assert isinstance(env.cc_factory(None, None), Dcqcn)

    def test_dcqcn_ecn_scales_with_rate(self):
        e100 = build_cc_env("dcqcn", link_rate_gbps=100.0).switch_config.ecn
        e400 = build_cc_env("dcqcn", link_rate_gbps=400.0).switch_config.ecn
        assert e400.kmin == 4 * e100.kmin
        assert e400.kmax == 4 * e100.kmax

    def test_rocc_post_install_attaches_controllers(self, sim):
        from helpers import make_dumbbell

        topo, env = make_dumbbell(sim, cc="rocc")
        assert all(
            any(c is not None for c in sw.port_controllers) for sw in topo.switches
        )

    def test_unknown_cc_rejected(self):
        with pytest.raises(ValueError):
            build_cc_env("bbr")

    def test_cc_params_forwarded(self):
        env = build_cc_env("fncc", beta=0.7)
        assert env.cc_factory(None, None).config.beta == 0.7


class TestMicrobench:
    def test_quick_dumbbell_returns_series(self):
        r = quick_dumbbell("fncc", duration_us=120.0)
        assert len(r.queue) > 0
        assert 0 in r.rates and 1 in r.rates
        assert r.peak_queue_bytes >= 0

    def test_monitor_targets_congestion_port(self):
        r = run_microbench("fncc", duration_us=400.0)
        # Two elephants at line rate into one egress: a queue must form
        # after the second join (300 us).
        assert r.queue.max_after(us(300)) > 0

    def test_custom_flow_size_and_stagger(self):
        r = run_microbench(
            "fncc", duration_us=150.0, flow_size_bytes=2000 * KB, stagger_us=50.0
        )
        assert r.queue.max_after(us(50)) > 0


class TestFig1HwTrends:
    def test_rows_and_trend(self):
        from repro.experiments.fig1_hw_trends import absorption_is_shrinking, run_fig1a

        rows = run_fig1a()
        assert len(rows) == 4
        assert absorption_is_shrinking(rows)

    def test_absorption_formula(self):
        from repro.traffic.distributions import buffer_per_capacity_us

        # 64 MB at 12.8 Tb/s = 512 Mbit / 12.8e12 = 40 us.
        assert buffer_per_capacity_us(12.8, 64.0) == pytest.approx(40.0)


class TestFig13Fairness:
    def test_staircase_and_jain(self):
        from repro.experiments.fig13_fairness import run_fairness

        res = run_fairness("fncc", n_flows=3, epoch_us=300.0, sample_us=5.0)
        # Probe late in each join epoch: fair share must match active count.
        for k in range(3):
            t = round((k + 0.9) * res.epoch_ps)
            active = res.active_flows_at(t)
            assert len(active) == k + 1
            assert res.jain_index_at(t) > 0.85, f"epoch {k}: unfair"

    def test_flows_exit_in_sequence(self):
        from repro.experiments.fig13_fairness import run_fairness

        res = run_fairness("fncc", n_flows=2, epoch_us=200.0, sample_us=5.0)
        t_after_first_leave = round(2.5 * res.epoch_ps)
        assert res.active_flows_at(t_after_first_leave) == [1]
        # Remaining flow ramps back toward line rate.
        assert res.rates[1].value_at(round(2.95 * res.epoch_ps)) > 60.0


class TestFctExperiment:
    def test_small_run_completes_and_bins(self):
        from repro.experiments.fct_experiment import run_fct_experiment

        r = run_fct_experiment("fncc", workload="hadoop", n_flows=40, seed=2)
        assert r.completed() == 40
        table = r.table
        assert sum(table.row_counts().values()) + len(table.overflow) == 40

    def test_bins_scale_with_workload(self):
        from repro.experiments.fct_experiment import run_fct_experiment

        r = run_fct_experiment(
            "fncc", workload="websearch", n_flows=10, scale=0.01, seed=2
        )
        assert r.bins[0] == 100  # 10 KB * 0.01

    def test_unknown_workload_rejected(self):
        from repro.experiments.fct_experiment import run_fct_experiment

        with pytest.raises(ValueError):
            run_fct_experiment("fncc", workload="memcached")

    def test_format_panel_renders(self):
        from repro.experiments.fct_experiment import compare_ccs, format_panel

        res = compare_ccs(("fncc",), workload="hadoop", n_flows=20, seed=1)
        text = format_panel(res, "p95", "demo")
        assert "fncc" in text and "demo" in text


class TestRunnerCli:
    def test_list(self, capsys):
        from repro.experiments.runner import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1", "fig9", "fig14", "headline"):
            assert name in out

    def test_unknown_experiment(self, capsys):
        from repro.experiments.runner import main

        assert main(["nonexistent"]) == 2

    def test_fig1a_runs(self, capsys):
        from repro.experiments.runner import main

        assert main(["fig1a"]) == 0
        assert "spectrum" in capsys.readouterr().out

    def test_list_marks_sweep_enabled(self, capsys):
        from repro.experiments.runner import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        lines = {ln.split()[0]: ln for ln in out.splitlines() if ln.strip()}
        for name in ("lbmatrix", "fig14", "fig9", "ablations", "paper-scale"):
            assert "[sweep" in lines[name], name
        assert "[sweep" not in lines["fig1a"]

    def test_jobs_on_non_sweep_experiment_noted_and_ignored(self, capsys):
        from repro.experiments.runner import main

        assert main(["fig1a", "--jobs", "2", "--seed", "9"]) == 0
        err = capsys.readouterr().err
        assert "ignoring --jobs" in err
        assert "ignoring" in err  # --seed note too

    def test_bad_jobs_rejected(self):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(["fig1a", "--jobs", "0"])
