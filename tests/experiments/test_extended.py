"""Theory, related-work, and paper-scale experiment modules."""

import pytest

from repro.experiments.paper_scale import run_flow_level, shape_correlation
from repro.experiments.related_work import run_related_work
from repro.experiments.theory import HOP_OF_LOCATION, run_theory


class TestTheoryExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_theory(duration_us=450.0)

    def test_covers_all_locations(self, rows):
        assert set(rows) == set(HOP_OF_LOCATION)

    def test_theory_gain_ordering(self, rows):
        assert (
            rows["first"]["theory_gain_us"]
            > rows["middle"]["theory_gain_us"]
            > rows["last"]["theory_gain_us"]
        )

    def test_measured_first_gain_exceeds_last(self, rows):
        assert rows["first"]["measured_gap_us"] > rows["last"]["measured_gap_us"]

    def test_lhcs_exceeds_pure_notification(self, rows):
        assert (
            rows["last"]["measured_gap_with_lhcs_us"]
            >= rows["last"]["measured_gap_us"]
        )


class TestRelatedWork:
    def test_all_six_schemes_run(self):
        res = run_related_work(duration_us=400.0)
        assert set(res) == {"fncc", "hpcc", "dcqcn", "rocc", "timely", "swift"}
        # FNCC shallowest among all six.
        assert res["fncc"].peak_queue_bytes == min(
            r.peak_queue_bytes for r in res.values()
        )


class TestPaperScale:
    def test_k8_flow_level_runs(self):
        table = run_flow_level(k=8, n_flows=300, seed=1)
        assert sum(table.row_counts().values()) + len(table.overflow) == 300

    def test_scaled_and_full_shapes_correlate(self):
        full = run_flow_level(k=4, n_flows=600, scale=1.0, seed=1)
        scaled = run_flow_level(k=4, n_flows=600, scale=0.1, seed=1)
        rho = shape_correlation(full, scaled)
        assert rho > 0.5, f"scaling destroyed the workload shape (rho={rho:.2f})"

    def test_higher_load_higher_slowdown(self):
        lo = run_flow_level(k=4, n_flows=400, load=0.3, seed=2)
        hi = run_flow_level(k=4, n_flows=400, load=0.8, seed=2)
        assert hi.aggregate("average") > lo.aggregate("average")
