"""tools/bench.py regression gate: ``--check`` edge cases and the quick
smoke set's coverage of the pause regime."""

import importlib.util
import json
import os
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "bench_cli", REPO_ROOT / "tools" / "bench.py"
)
bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench)


def entry(label, jobs=None, sanitize=None, **walls):
    e = {
        "label": label,
        "git_rev": "deadbee",
        "scenarios": {name: {"wall_s": w, "wall_min_s": w} for name, w in walls.items()},
    }
    if jobs is not None:
        e["jobs"] = jobs
    if sanitize is not None:
        e["sanitize"] = sanitize
    return e


class TestCheckRegression:
    def test_empty_trajectory_is_clean_noop(self, capsys):
        assert bench.check_regression([]) == 0
        assert "empty" in capsys.readouterr().out

    def test_single_entry_is_clean_noop(self, capsys):
        assert bench.check_regression([entry("only", fig9_micro=0.2)]) == 0
        assert "one trajectory entry" in capsys.readouterr().out

    def test_no_shared_scenarios_fails_loudly(self, capsys):
        t = [entry("a", fig9_micro=0.2), entry("b", lbmatrix=1.0)]
        assert bench.check_regression(t) == 2
        assert "share no scenarios" in capsys.readouterr().out

    def test_missing_scenarios_key_treated_as_no_overlap(self, capsys):
        t = [{"label": "a"}, entry("b", fig9_micro=0.2)]
        assert bench.check_regression(t) == 2
        assert "share no scenarios" in capsys.readouterr().out

    def test_regression_beyond_threshold_fails(self, capsys):
        t = [entry("old", fig9_micro=0.2), entry("new", fig9_micro=0.3)]
        assert bench.check_regression(t, threshold=0.15) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_within_threshold_passes(self):
        t = [entry("old", fig9_micro=0.2), entry("new", fig9_micro=0.22)]
        assert bench.check_regression(t, threshold=0.15) == 0

    def test_improvement_passes(self):
        t = [entry("old", pause_storm=2.0), entry("new", pause_storm=0.2)]
        assert bench.check_regression(t) == 0

    def test_only_shared_scenarios_compared(self):
        # A --quick entry after a full entry: the quick subset gates, the
        # rest is ignored rather than crashing or vacuously failing.
        t = [
            entry("full", fig9_micro=0.2, fig14_websearch=1.2),
            entry("quick", fig9_micro=0.21, pause_storm=0.3),
        ]
        assert bench.check_regression(t) == 0

    def test_main_check_with_missing_file(self, tmp_path):
        assert bench.main(["--check", "--out", str(tmp_path / "missing.json")]) == 0

    def test_main_check_propagates_failure(self, tmp_path):
        out = tmp_path / "traj.json"
        out.write_text(
            json.dumps([entry("old", fig9_micro=0.2), entry("new", fig9_micro=0.4)])
        )
        assert bench.main(["--check", "--out", str(out)]) == 1

    def test_negative_lookahead_rejected_at_cli(self):
        # A port with commit_lookahead < 1 would IndexError deep in the
        # hot path; the CLI must reject it with a clear message instead.
        import pytest

        with pytest.raises(SystemExit):
            bench.main(["--lookahead", "-1", "--no-write"])


class TestJobsProvenance:
    """--check only compares entries measured at the same worker count: a
    1-job baseline vs an N-job entry is parallelism, not a regression."""

    def test_mismatched_jobs_not_compared(self, capsys):
        # The 4-job sweep entry is 2x faster than the serial one — that
        # must not read as (or mask) anything; there is no 4-job
        # predecessor, so the gate is a clean no-op.
        t = [entry("serial", jobs=1, sweep=4.0), entry("par", jobs=4, sweep=2.0)]
        assert bench.check_regression(t) == 0
        assert "no previous entry measured with jobs=4" in capsys.readouterr().out

    def test_matching_jobs_found_across_mixed_history(self, capsys):
        # newest jobs=1 must skip the intervening jobs=4 entry and gate
        # against the older jobs=1 entry — which here is a regression.
        t = [
            entry("old-serial", jobs=1, fig9_micro=0.2),
            entry("par", jobs=4, fig9_micro=0.05),
            entry("new-serial", jobs=1, fig9_micro=0.4),
        ]
        assert bench.check_regression(t) == 1
        out = capsys.readouterr().out
        assert "old-serial" in out and "FAIL" in out

    def test_missing_jobs_key_means_serial(self):
        # Pre-provenance entries (no "jobs" key) were all serial: they
        # are comparable with explicit jobs=1 entries.
        t = [entry("legacy", fig9_micro=0.2), entry("new", jobs=1, fig9_micro=0.21)]
        assert bench.check_regression(t) == 0
        assert bench.entry_jobs(t[0]) == 1

    def test_same_jobs_no_shared_scenarios_still_loud(self, capsys):
        t = [
            entry("a", jobs=2, fig9_micro=0.2),
            entry("skip", jobs=1, sweep=1.0),
            entry("b", jobs=2, lbmatrix=1.0),
        ]
        assert bench.check_regression(t) == 2
        assert "share no scenarios" in capsys.readouterr().out

    def test_bad_jobs_rejected_at_cli(self):
        import pytest

        with pytest.raises(SystemExit):
            bench.main(["--jobs", "0", "--no-write"])

    def test_jobs_tag_dropped_when_no_jobs_aware_scenario(self, tmp_path, capsys):
        # --jobs on a jobs-oblivious scenario changes nothing, so the
        # entry must record jobs=1 — otherwise --check would match it
        # against unrelated jobs=4 entries (or never gate it at all).
        out = tmp_path / "traj.json"
        assert (
            bench.main(
                ["--scenario", "fig9_micro", "--repeats", "1", "--jobs", "4",
                 "--out", str(out)]
            )
            == 0
        )
        assert "no effect" in capsys.readouterr().out
        (entry,) = json.loads(out.read_text())
        assert entry["jobs"] == 1
        assert entry["cpu_count"] >= 1


class TestSanitizeProvenance:
    """--check partitions by sanitize mode exactly like jobs/trains/backend:
    a sanitized wall time is debug instrumentation, not a regression."""

    def test_mismatched_sanitize_not_compared(self, capsys):
        t = [
            entry("plain", pause_storm=0.2),
            entry("sanitized", sanitize="pool,tie", pause_storm=0.3),
        ]
        assert bench.check_regression(t) == 0
        out = capsys.readouterr().out
        assert "no previous entry measured with" in out and "sanitize=pool,tie" in out

    def test_matching_sanitize_found_across_mixed_history(self, capsys):
        # newest sanitize=off must skip the sanitized entry and gate
        # against the older unsanitized one — a genuine regression here.
        t = [
            entry("old", pause_storm=0.2),
            entry("debug", sanitize="pool,tie", pause_storm=0.5),
            entry("new", sanitize="off", pause_storm=0.4),
        ]
        assert bench.check_regression(t) == 1
        out = capsys.readouterr().out
        assert "old" in out and "FAIL" in out

    def test_sanitized_pair_gates_normally(self):
        t = [
            entry("debug-a", sanitize="pool,tie", pause_storm=0.3),
            entry("debug-b", sanitize="pool,tie", pause_storm=0.31),
        ]
        assert bench.check_regression(t) == 0

    def test_missing_sanitize_key_means_off(self):
        assert bench.entry_sanitize(entry("legacy", fig9_micro=0.2)) == "off"
        t = [
            entry("legacy", fig9_micro=0.2),
            entry("new", sanitize="off", fig9_micro=0.21),
        ]
        assert bench.check_regression(t) == 0

    def test_sanitize_spec_normalized_for_comparison(self):
        # "tie,pool" and "pool, tie" are the same provenance partition.
        assert bench.norm_sanitize("tie,pool") == "pool,tie"
        assert bench.norm_sanitize(" pool , tie ") == "pool,tie"
        assert bench.norm_sanitize("off") == "off"
        assert bench.norm_sanitize("") == "off"
        assert bench.entry_sanitize(entry("x", sanitize="tie,pool", a=1.0)) == "pool,tie"

    def test_bad_sanitize_rejected_at_cli(self):
        import pytest

        with pytest.raises(SystemExit):
            bench.main(["--sanitize", "typo", "--no-write"])

    def test_entry_records_sanitize_provenance(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        out = tmp_path / "traj.json"
        assert (
            bench.main(
                ["--scenario", "fig9_micro", "--repeats", "1",
                 "--sanitize", "tie,pool", "--out", str(out)]
            )
            == 0
        )
        (e,) = json.loads(out.read_text())
        assert e["sanitize"] == "pool,tie"

    def test_sanitize_env_not_leaked_past_main(self, monkeypatch):
        # main() exports REPRO_SANITIZE so spawned workers inherit the
        # mode, but must restore the caller's env on exit — a leaked
        # "pool" mode would make every later Simulator in this process
        # poison released packets (caught live: a tap test reading its
        # captured frames post-run started raising UseAfterReleaseError).
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert (
            bench.main(
                ["--scenario", "fig9_micro", "--repeats", "1",
                 "--sanitize", "tie,pool", "--no-write"]
            )
            == 0
        )
        assert "REPRO_SANITIZE" not in os.environ

    def test_sanitize_defaults_from_environment(self, tmp_path, monkeypatch):
        # REPRO_SANITIZE is the spawn-worker propagation channel (like
        # REPRO_TRAINS); the flag default reads it so an env-configured CI
        # job records honest provenance without repeating itself.
        monkeypatch.setenv("REPRO_SANITIZE", "tie")
        out = tmp_path / "traj.json"
        assert (
            bench.main(
                ["--scenario", "fig9_micro", "--repeats", "1", "--out", str(out)]
            )
            == 0
        )
        (e,) = json.loads(out.read_text())
        assert e["sanitize"] == "tie"
        monkeypatch.delenv("REPRO_SANITIZE")
        out2 = tmp_path / "traj2.json"
        assert (
            bench.main(
                ["--scenario", "fig9_micro", "--repeats", "1", "--out", str(out2)]
            )
            == 0
        )
        (e2,) = json.loads(out2.read_text())
        assert e2["sanitize"] == "off"


class TestQuickSmokeSet:
    def test_pause_storm_is_gated_by_quick_smoke(self):
        # CI runs --quick twice then --check: the pause-transition regime
        # must be in that loop so an O(backlog) regression cannot slip
        # through a pause-free smoke set.
        assert "pause_storm" in bench.QUICK_SCENARIOS
        assert set(bench.QUICK_SCENARIOS) <= set(bench.SCENARIOS)

    def test_sweep_scenario_registered_and_jobs_aware(self):
        from benchmarks.perf_harness import JOBS_SCENARIOS, SCENARIOS

        assert "sweep" in SCENARIOS
        assert "sweep" in JOBS_SCENARIOS
        assert JOBS_SCENARIOS <= set(SCENARIOS)
