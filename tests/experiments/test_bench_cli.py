"""tools/bench.py regression gate: ``--check`` edge cases and the quick
smoke set's coverage of the pause regime."""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "bench_cli", REPO_ROOT / "tools" / "bench.py"
)
bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench)


def entry(label, **walls):
    return {
        "label": label,
        "git_rev": "deadbee",
        "scenarios": {name: {"wall_s": w, "wall_min_s": w} for name, w in walls.items()},
    }


class TestCheckRegression:
    def test_empty_trajectory_is_clean_noop(self, capsys):
        assert bench.check_regression([]) == 0
        assert "empty" in capsys.readouterr().out

    def test_single_entry_is_clean_noop(self, capsys):
        assert bench.check_regression([entry("only", fig9_micro=0.2)]) == 0
        assert "one trajectory entry" in capsys.readouterr().out

    def test_no_shared_scenarios_fails_loudly(self, capsys):
        t = [entry("a", fig9_micro=0.2), entry("b", lbmatrix=1.0)]
        assert bench.check_regression(t) == 2
        assert "share no scenarios" in capsys.readouterr().out

    def test_missing_scenarios_key_treated_as_no_overlap(self, capsys):
        t = [{"label": "a"}, entry("b", fig9_micro=0.2)]
        assert bench.check_regression(t) == 2
        assert "share no scenarios" in capsys.readouterr().out

    def test_regression_beyond_threshold_fails(self, capsys):
        t = [entry("old", fig9_micro=0.2), entry("new", fig9_micro=0.3)]
        assert bench.check_regression(t, threshold=0.15) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_within_threshold_passes(self):
        t = [entry("old", fig9_micro=0.2), entry("new", fig9_micro=0.22)]
        assert bench.check_regression(t, threshold=0.15) == 0

    def test_improvement_passes(self):
        t = [entry("old", pause_storm=2.0), entry("new", pause_storm=0.2)]
        assert bench.check_regression(t) == 0

    def test_only_shared_scenarios_compared(self):
        # A --quick entry after a full entry: the quick subset gates, the
        # rest is ignored rather than crashing or vacuously failing.
        t = [
            entry("full", fig9_micro=0.2, fig14_websearch=1.2),
            entry("quick", fig9_micro=0.21, pause_storm=0.3),
        ]
        assert bench.check_regression(t) == 0

    def test_main_check_with_missing_file(self, tmp_path):
        assert bench.main(["--check", "--out", str(tmp_path / "missing.json")]) == 0

    def test_main_check_propagates_failure(self, tmp_path):
        out = tmp_path / "traj.json"
        out.write_text(
            json.dumps([entry("old", fig9_micro=0.2), entry("new", fig9_micro=0.4)])
        )
        assert bench.main(["--check", "--out", str(out)]) == 1

    def test_negative_lookahead_rejected_at_cli(self):
        # A port with commit_lookahead < 1 would IndexError deep in the
        # hot path; the CLI must reject it with a clear message instead.
        import pytest

        with pytest.raises(SystemExit):
            bench.main(["--lookahead", "-1", "--no-write"])


class TestQuickSmokeSet:
    def test_pause_storm_is_gated_by_quick_smoke(self):
        # CI runs --quick twice then --check: the pause-transition regime
        # must be in that loop so an O(backlog) regression cannot slip
        # through a pause-free smoke set.
        assert "pause_storm" in bench.QUICK_SCENARIOS
        assert set(bench.QUICK_SCENARIOS) <= set(bench.SCENARIOS)
