"""Pause-storm invariants for the bounded-lookahead port.

A brute-force reference transmitter (the classic eager
``kick → tx-done → deliver`` engine, one event per stage, zero laziness)
is driven through the same random pause/resume/enqueue scripts as the real
:class:`repro.net.port.Port`.  Deliveries (times and order), per-priority
``qbytes``, ``qbytes_total`` probes, and the ``max_qlen`` watermark must
never diverge — for any commit lookahead K.

Tie-breaking note: the real port is arithmetic, so a frame whose start
equals ``now`` counts as in service no matter when within the timestamp an
operation runs.  The reference engine processes frame boundaries in
events, so script operations are re-scheduled once (same timestamp, later
sequence number) to run *after* any boundary at the same instant — the
same phase the arithmetic port implements implicitly.
"""

import random
from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.node import Node
from repro.net.packet import DATA, PAUSE, Packet
from repro.net.port import connect
from repro.sim.engine import Simulator


class Sink(Node):
    def __init__(self, sim, name="sink"):
        super().__init__(sim, name)
        self.arrivals = []

    def receive(self, pkt, in_port):
        self.arrivals.append((self.sim.now, pkt.kind, pkt.flow_id))


class RefPort:
    """Brute-force reference transmitter.

    Mirrors the Port contract: strict priority (control first, then
    ascending class index), PFC at frame boundaries (the in-service frame
    always completes), backlog accounting that counts waiting frames only,
    and a watermark that sees every frame that parked even for an instant
    but not one that went straight into service on an idle wire.
    """

    def __init__(self, sim, rate_gbps, prop_delay_ps, n_prio):
        self.sim = sim
        self.rate = rate_gbps
        self.prop = prop_delay_ps
        self.queues = [deque() for _ in range(n_prio)]
        self.ctrl = deque()
        self.paused = [False] * n_prio
        self.qbytes = [0] * n_prio
        self.queued = 0
        self.max_qlen = 0
        self.busy = False
        self.waiting = 0
        self.deliveries = []

    def enqueue(self, pkt):
        if pkt.kind >= PAUSE:
            self.ctrl.append(pkt)
            self.waiting += 1
            self._kick()
            return
        prio = pkt.priority
        if not self.busy and self.waiting == 0 and not self.paused[prio]:
            # Straight into service on an idle wire: never backlog (the
            # watermark deviation documented in DESIGN.md §2.1).
            self._start(pkt)
            return
        self.queues[prio].append(pkt)
        self.waiting += 1
        self.qbytes[prio] += pkt.size
        self.queued += pkt.size
        if self.queued > self.max_qlen:
            self.max_qlen = self.queued
        self._kick()

    def pause(self, prio):
        self.paused[prio] = True

    def resume(self, prio):
        self.paused[prio] = False
        self._kick()

    def _kick(self):
        if self.busy:
            return
        if self.ctrl:
            self.waiting -= 1
            self._start(self.ctrl.popleft())
            return
        for prio, q in enumerate(self.queues):
            if q and not self.paused[prio]:
                pkt = q.popleft()
                self.waiting -= 1
                self.qbytes[prio] -= pkt.size
                self.queued -= pkt.size
                self._start(pkt)
                return

    def _start(self, pkt):
        self.busy = True
        self.sim.schedule(round(pkt.size * 8000 / self.rate), self._tx_done, pkt)

    def _tx_done(self, pkt):
        self.busy = False
        self.sim.schedule(self.prop, self._deliver, pkt)
        self._kick()

    def _deliver(self, pkt):
        self.deliveries.append((self.sim.now, pkt.kind, pkt.flow_id))


# -- script machinery ---------------------------------------------------------

def make_script(rng):
    """A random (time, op) script plus the link/port parameters to run it
    under.  Ends with a resume-all so both engines drain completely."""
    n_prio = rng.randint(1, 3)
    rate = rng.choice([25.0, 100.0, 400.0])
    prop = rng.choice([0, 1000, 1_500_000])
    ops = []
    flow = 0
    for _ in range(rng.randint(30, 90)):
        t = rng.randrange(0, 3_000_000)
        r = rng.random()
        if r < 0.55:
            ops.append((t, ("enq", rng.randrange(n_prio), rng.randrange(64, 1519), flow)))
            flow += 1
        elif r < 0.70:
            ops.append((t, ("pause", rng.randrange(n_prio))))
        elif r < 0.85:
            ops.append((t, ("resume", rng.randrange(n_prio))))
        elif r < 0.90:
            ops.append((t, ("ctrl", flow)))
            flow += 1
        else:
            ops.append((t, ("probe",)))
    ops.sort(key=lambda e: e[0])
    drain_t = 4_000_000
    for prio in range(n_prio):
        ops.append((drain_t, ("resume", prio)))
    ops.append((drain_t, ("probe",)))
    return n_prio, rate, prop, ops


def _packet(op):
    if op[0] == "enq":
        _, prio, size, flow = op
        return Packet(DATA, flow_id=flow, src=0, dst=1, size=size,
                      payload=max(0, size - 48), priority=prio)
    return Packet(PAUSE, flow_id=op[1], size=64)


def run_real(n_prio, rate, prop, ops, lookahead):
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    pa, _pb = connect(sim, a, b, rate, prop, n_prio=n_prio)
    pa.commit_lookahead = lookahead
    probes = []

    def apply(op):
        kind = op[0]
        if kind == "enq" or kind == "ctrl":
            pa.enqueue(_packet(op))
        elif kind == "pause":
            pa.pause(op[1])
        elif kind == "resume":
            pa.resume(op[1])
        else:
            probes.append((sim.now, pa.qbytes_total, tuple(pa.qbytes), pa.max_qlen))
            # Window invariant: the committed-pending set is the K-frame
            # lookahead plus at most one propagation delay of cover frames.
            min_ser = round(64 * 8000 / rate)
            assert len(pa._acct) <= lookahead + prop // max(1, min_ser) + 2

    for t, op in ops:
        sim.schedule(t, apply, op)
    sim.run()
    return b.arrivals, probes, pa


def run_ref(n_prio, rate, prop, ops):
    sim = Simulator()
    ref = RefPort(sim, rate, prop, n_prio)
    probes = []

    def apply(op):
        kind = op[0]
        if kind == "enq" or kind == "ctrl":
            ref.enqueue(_packet(op))
        elif kind == "pause":
            ref.pause(op[1])
        elif kind == "resume":
            ref.resume(op[1])
        else:
            probes.append((sim.now, ref.queued, tuple(ref.qbytes), ref.max_qlen))

    def refire(op):
        # Same timestamp, later seq: runs after any frame boundary at now.
        sim.schedule(0, apply, op)

    for t, op in ops:
        sim.schedule(t, refire, op)
    sim.run()
    return ref.deliveries, probes


class TestAgainstBruteForceReference:
    @given(seed=st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=40, deadline=None)
    def test_deliveries_and_accounting_never_diverge(self, seed):
        rng = random.Random(seed)
        n_prio, rate, prop, ops = make_script(rng)
        lookahead = rng.choice([1, 2, 3, 7])
        real_deliv, real_probes, pa = run_real(n_prio, rate, prop, ops, lookahead)
        ref_deliv, ref_probes = run_ref(n_prio, rate, prop, ops)
        assert real_deliv == ref_deliv
        assert real_probes == ref_probes
        # Drained: nothing stranded anywhere, accounting returns to zero.
        n_frames = sum(1 for _, op in ops if op[0] in ("enq", "ctrl"))
        assert len(real_deliv) == n_frames
        assert pa.qbytes_total == 0
        assert pa._uncommitted == 0

    @given(seed=st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=15, deadline=None)
    def test_schedule_identical_for_every_lookahead(self, seed):
        """K is a pure performance knob: K=1, the default, and an
        effectively-eager window must produce bit-identical schedules."""
        rng = random.Random(seed)
        n_prio, rate, prop, ops = make_script(rng)
        results = [
            run_real(n_prio, rate, prop, ops, k)[:2] for k in (1, 3, 1 << 30)
        ]
        assert results[0] == results[1] == results[2]
