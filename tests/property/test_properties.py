"""Property-based tests (hypothesis) on the core data structures and
invariants: event ordering, exact serialization arithmetic, CDF sampling,
ideal-FCT monotonicity, hash quality, HPCC window bounds, and PFC
losslessness under random traffic."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.ideal import ideal_fct_ps
from repro.sim.engine import Simulator
from repro.sim.rng import stable_hash64
from repro.traffic.cdf import PiecewiseCdf
from repro.units import serialization_ps, us


class TestEngineProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_dispatch_order_is_sorted(self, delays):
        sim = Simulator()
        seen = []
        for d in delays:
            sim.schedule(d, seen.append, d)
        sim.run()
        assert seen == sorted(delays)

    @given(
        st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=100),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_run_until_never_overshoots(self, delays, horizon):
        sim = Simulator()
        for d in delays:
            sim.schedule(d, lambda _: None)
        sim.run(until=horizon)
        assert sim.now <= max(horizon, 0) or not delays

    @given(st.lists(st.integers(min_value=1, max_value=10**6), min_size=2, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_cancellation_removes_exactly_the_cancelled(self, delays):
        sim = Simulator()
        events = [sim.schedule(d, lambda _: None) for d in delays]
        for ev in events[::2]:
            ev.cancel()
        assert sim.run() == len(delays) - len(events[::2])


class TestSerializationProperties:
    RATES = st.sampled_from([10.0, 25.0, 40.0, 50.0, 100.0, 200.0, 400.0])

    @given(st.integers(min_value=0, max_value=10**9), RATES)
    def test_nonnegative_and_monotone(self, nbytes, rate):
        t = serialization_ps(nbytes, rate)
        assert t >= 0
        assert serialization_ps(nbytes + 1, rate) >= t

    @given(st.integers(min_value=1, max_value=10**6), RATES)
    def test_additive(self, nbytes, rate):
        a = serialization_ps(nbytes, rate)
        # Paper rates divide 8000 evenly, so serialization is exactly linear.
        assert serialization_ps(2 * nbytes, rate) == 2 * a


class TestCdfProperties:
    @st.composite
    def cdfs(draw):
        n = draw(st.integers(min_value=2, max_value=8))
        sizes = sorted(
            draw(
                st.lists(
                    st.integers(min_value=1, max_value=10**8),
                    min_size=n,
                    max_size=n,
                    unique=True,
                )
            )
        )
        probs = sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=0.99),
                    min_size=n - 1,
                    max_size=n - 1,
                )
            )
        )
        return PiecewiseCdf(list(zip(sizes, probs + [1.0])))

    @given(cdfs(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=100, deadline=None)
    def test_samples_in_support(self, cdf, seed):
        rng = random.Random(seed)
        x = cdf.sample(rng)
        assert 1 <= x <= cdf.sizes[-1] + 1

    @given(cdfs())
    @settings(max_examples=50, deadline=None)
    def test_quantiles_monotone(self, cdf):
        qs = [cdf.quantile(q / 10) for q in range(11)]
        assert qs == sorted(qs)

    @given(cdfs())
    @settings(max_examples=50, deadline=None)
    def test_mean_within_support(self, cdf):
        m = cdf.mean()
        assert 0 <= m <= cdf.sizes[-1]


class TestIdealFctProperties:
    LINKS = st.lists(
        st.tuples(
            st.sampled_from([25.0, 100.0, 400.0]),
            st.integers(min_value=0, max_value=10**7),
        ),
        min_size=1,
        max_size=6,
    )

    @given(st.integers(min_value=1, max_value=10**7), LINKS)
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_size(self, size, links):
        assert ideal_fct_ps(size + 1000, links) >= ideal_fct_ps(size, links)

    @given(st.integers(min_value=1, max_value=10**6), LINKS)
    @settings(max_examples=60, deadline=None)
    def test_extra_hop_never_faster(self, size, links):
        longer = links + [(100.0, us(1))]
        assert ideal_fct_ps(size, longer) >= ideal_fct_ps(size, links)

    @given(st.integers(min_value=1, max_value=10**6), LINKS)
    @settings(max_examples=60, deadline=None)
    def test_at_least_bottleneck_time(self, size, links):
        bottleneck = min(r for r, _ in links)
        assert ideal_fct_ps(size, links) >= serialization_ps(size, bottleneck)


class TestHashProperties:
    @given(st.lists(st.integers(min_value=0, max_value=2**63), min_size=1, max_size=5))
    @settings(max_examples=100)
    def test_stable(self, parts):
        assert stable_hash64(*parts) == stable_hash64(*parts)

    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=100)
    def test_canonical_symmetry_for_ecmp(self, a, b, n):
        """The symmetric-ECMP construction: canonicalized inputs give the
        same bucket in both directions."""
        lo, hi = min(a, b), max(a, b)
        assert stable_hash64(lo, hi, 7) % n == stable_hash64(lo, hi, 7) % n

    def test_bucket_balance(self):
        counts = [0, 0, 0, 0]
        for f in range(4000):
            counts[stable_hash64(3, 99, f) % 4] += 1
        assert min(counts) > 800  # roughly uniform


class TestHpccWindowProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2_000_000),  # qlen
                st.integers(min_value=0, max_value=200_000),  # tx delta
            ),
            min_size=2,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_window_always_within_bounds(self, samples):
        """Whatever INT sequence arrives, W stays in [min_window, W_init]."""
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).parent.parent / "cc"))
        from cc_helpers import FakeQP, make_ack

        from repro.cc.hpcc import Hpcc

        cc = Hpcc()
        qp = FakeQP()
        cc.on_flow_start(qp)
        tx = 0
        for i, (qlen, dtx) in enumerate(samples):
            tx += dtx
            qp.snd_nxt += 5000
            recs = [{"B": 100.0, "ts": us(1 + i), "tx": tx, "q": qlen}]
            cc.on_ack(qp, make_ack(seq=1 + i * 5000, records=recs))
            assert cc.config.min_window_bytes <= qp.window <= cc.w_init
            assert qp.rate_gbps >= 0


class TestPfcLosslessnessProperty:
    @given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=2, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_random_incast_is_lossless(self, seed, n_senders):
        """PFC with sane thresholds never drops, whatever the arrival jitter."""
        from repro.experiments.common import build_cc_env, launch_flows
        from repro.sim.rng import SeedSequenceFactory
        from repro.topo.star import star
        from repro.transport.flow import Flow

        rng = random.Random(seed)
        sim = Simulator()
        env = build_cc_env("dcqcn")  # most aggressive queue builder
        topo = star(
            sim,
            n_senders + 1,
            switch_config=env.switch_config,
            seeds=SeedSequenceFactory(1),
            cnp_enabled=True,
        )
        flows = [
            Flow(i, i, n_senders, rng.randrange(10_000, 400_000), start_ps=us(rng.uniform(0, 50)))
            for i in range(n_senders)
        ]
        launch_flows(topo, flows, env)
        sim.run(until=us(3000))
        assert sum(sw.drops for sw in topo.switches) == 0
