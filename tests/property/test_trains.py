"""Frame-train exact-equivalence suite (DESIGN.md §2.2).

Trains are a pure representation change: the fused delivery pipeline, the
per-train route memo and the widened commit window must never move a wire
timestamp, a counter, an RNG draw, or an FCT.  Every test here runs the
same scenario with trains on and trains off and asserts byte-identical
observables — FCT fingerprints, every per-port :class:`PortStats` counter,
ECN mark counts, :func:`repro.metrics.pfc_frame_totals` ledgers and the
sampled series — plus one *engagement* guard: on a train-friendly fabric
the fused path must actually fire (``Port.train_frames > 0``), so a
silently broken predicate cannot pass as vacuous equivalence.

Split triggers covered: PFC XOFF mid-train (both injected ``pause()``
calls and real PFC storms under a tight XOFF threshold), ECN kmin
crossings mid-train (DCQCN's RED marking draws from the shared RNG
stream), a PacketTap attached to a switch, and per-packet LB strategies
(spray) whose switches refuse fusion outright.
"""

import random

import pytest

import repro.sim.engine as engine
from repro.experiments.common import run_microbench, summarize_microbench
from repro.experiments.fct_experiment import run_fct_experiment
from repro.experiments.lbmatrix import run_lb_cell
from repro.metrics import pfc_frame_totals
from repro.metrics.tap import PacketTap
from repro.net.packet import DATA
from repro.units import KB, us


@pytest.fixture(autouse=True)
def _restore_trains_flag():
    saved = engine.TRAINS
    yield
    engine.TRAINS = saved


def _nodes(topo):
    return list(topo.hosts) + list(topo.switches)


def port_stats_fingerprint(topo):
    """Every PortStats counter of every port, in wiring order."""
    out = []
    for node in _nodes(topo):
        for port in node.ports:
            s = port.stats
            out.append(
                (
                    node.name,
                    port.index,
                    s.tx_packets,
                    s.tx_bytes,
                    s.rx_packets,
                    s.rx_bytes,
                    s.max_qlen,
                    s.drops,
                    s.ecn_marked,
                    s.pause_sent,
                    s.pause_received,
                    s.resume_sent,
                    s.resume_received,
                )
            )
    return tuple(out)


def train_frames_total(topo):
    return sum(p.train_frames for n in _nodes(topo) for p in n.ports)


def _microbench_obs(**kw):
    r = run_microbench(**kw)
    return (
        summarize_microbench(r, seed=kw.get("seed", 1)).fingerprint(),
        port_stats_fingerprint(r.topo),
        pfc_frame_totals(_nodes(r.topo)),
        train_frames_total(r.topo),
    )


def _ab(fn):
    """Run ``fn`` under trains on and off; return both observations."""
    engine.TRAINS = True
    on = fn()
    engine.TRAINS = False
    off = fn()
    return on, off


class TestScenarioEquivalence:
    def test_fncc_dumbbell_and_trains_engage(self):
        on, off = _ab(
            lambda: _microbench_obs(
                cc="fncc", link_rate_gbps=100.0, duration_us=200.0, seed=1
            )
        )
        assert on[:3] == off[:3]
        # Engagement guard: the INT-heavy FNCC dumbbell is the train
        # archetype — the fused path must actually fire with trains on
        # and must never fire with trains off.
        assert on[3] > 0
        assert off[3] == 0

    def test_dcqcn_ecn_marking_mid_train(self):
        # DCQCN configures RED/ECN: kmin crossings inside bursts draw from
        # the shared per-switch RNG stream; one skipped or extra draw
        # would desynchronize every later mark.
        on, off = _ab(
            lambda: _microbench_obs(
                cc="dcqcn",
                link_rate_gbps=100.0,
                duration_us=300.0,
                stagger_us=20.0,  # both elephants overlap: queue crosses kmin
                seed=2,
            )
        )
        assert on[:3] == off[:3]
        marked = sum(rec[8] for rec in on[1])
        assert marked > 0, "scenario must actually exercise ECN marking"

    def test_pfc_storm_xoff_mid_train(self):
        # A tight XOFF threshold forces real PAUSE/RESUME traffic: frames
        # bulk-committed into a train window get uncommitted at the frame
        # boundary exactly like the per-frame engine.
        on, off = _ab(
            lambda: _microbench_obs(
                cc="fncc",
                link_rate_gbps=100.0,
                duration_us=300.0,
                stagger_us=30.0,  # overlapped elephants: queue hits XOFF
                seed=3,
                pfc_xoff=40_000,
            )
        )
        assert on[:3] == off[:3]
        pauses = on[2]["pause_sent"]
        assert pauses > 0, "scenario must actually exercise PFC"

    def test_fct_experiment_websearch(self):
        def run():
            r = run_fct_experiment(
                "fncc", workload="websearch", n_flows=60, seed=5, max_horizon_ms=30.0
            )
            return (
                r.fct_fingerprint(),
                port_stats_fingerprint(r.topo),
                pfc_frame_totals(_nodes(r.topo)),
            )

        on, off = _ab(run)
        assert on == off

    def test_spray_cell_refuses_fusion_but_matches(self):
        def run():
            cell = run_lb_cell(
                "spray", "fncc", workload="websearch", n_flows=60, seed=4
            )
            return (
                cell.fct_fingerprint(),
                port_stats_fingerprint(cell.topo),
                train_frames_total(cell.topo),
                all(not sw.train_transparent() for sw in cell.topo.switches),
            )

        on, off = _ab(run)
        assert on[:2] == off[:2]
        # Per-packet LB: every switch refuses fusion, so zero frames ride
        # the fused path even with trains enabled.
        assert on[2] == 0 and off[2] == 0
        assert on[3] and off[3]

    def test_ecmp_cell_permutation_elephants(self):
        def run():
            cell = run_lb_cell(
                "ecmp", "fncc", workload="permutation",
                perm_flow_bytes=300 * KB, seed=6,
            )
            return (
                cell.fct_fingerprint(),
                port_stats_fingerprint(cell.topo),
                train_frames_total(cell.topo),
            )

        on, off = _ab(run)
        assert on[:2] == off[:2]
        assert on[2] > 0 and off[2] == 0


class TestRandomizedPauseScripts:
    """Injected pause/resume at random instants on the bottleneck port —
    XOFF/XON landing anywhere inside a bulk-committed train window —
    must leave every observable identical to the per-frame engine."""

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_random_pause_script(self, seed):
        rng = random.Random(seed)
        script = sorted(
            (rng.randrange(0, round(us(250))), rng.random() < 0.5)
            for _ in range(40)
        )

        def run_scripted():
            from repro.experiments.common import build_cc_env, launch_flows
            from repro.sim.engine import Simulator
            from repro.sim.rng import SeedSequenceFactory
            from repro.topo.base import LinkSpec
            from repro.topo.dumbbell import dumbbell
            from repro.traffic.generator import staggered_elephants
            from repro.units import MB

            sim = Simulator()
            seeds = SeedSequenceFactory(seed)
            env = build_cc_env("fncc", link_rate_gbps=100.0)
            topo = dumbbell(
                sim,
                n_senders=2,
                n_switches=2,
                link=LinkSpec(rate_gbps=100.0, prop_delay_ps=us(1.5)),
                switch_config=env.switch_config,
                seeds=seeds,
                cnp_enabled=env.cnp_enabled,
            )
            env.post_install(topo)
            flows = staggered_elephants(
                sender_ids=[h.host_id for h in topo.hosts[:2]],
                receiver_id=topo.hosts[-1].host_id,
                size_bytes=2 * MB,
                stagger_ps=us(30),
            )
            launch_flows(topo, flows, env)
            sw = topo.switches[0]
            nxt = topo.switches[1].name
            port = sw.ports[topo.graph.edges[sw.name, nxt]["ports"][sw.name]]
            for t, is_pause in script:
                if is_pause:
                    sim.schedule(t, lambda _arg, _p=port: _p.pause(0))
                else:
                    sim.schedule(t, lambda _arg, _p=port: _p.resume(0))
            sim.run(until=round(us(250)))
            return (
                port_stats_fingerprint(topo),
                pfc_frame_totals(_nodes(topo)),
                train_frames_total(topo),
            )

        engine.TRAINS = True
        on = run_scripted()
        engine.TRAINS = False
        off = run_scripted()
        assert on[:2] == off[:2]


class TestSplitTriggers:
    def test_tap_on_switch_forces_per_frame(self):
        def run(tap_switch):
            from repro.experiments.common import build_cc_env, launch_flows
            from repro.sim.engine import Simulator
            from repro.sim.rng import SeedSequenceFactory
            from repro.topo.base import LinkSpec
            from repro.topo.dumbbell import dumbbell
            from repro.traffic.generator import staggered_elephants
            from repro.units import MB

            sim = Simulator()
            seeds = SeedSequenceFactory(7)
            env = build_cc_env("fncc", link_rate_gbps=100.0)
            topo = dumbbell(
                sim,
                n_senders=2,
                n_switches=2,
                link=LinkSpec(rate_gbps=100.0, prop_delay_ps=us(1.5)),
                switch_config=env.switch_config,
                seeds=seeds,
                cnp_enabled=env.cnp_enabled,
            )
            env.post_install(topo)
            flows = staggered_elephants(
                sender_ids=[h.host_id for h in topo.hosts[:2]],
                receiver_id=topo.hosts[-1].host_id,
                size_bytes=1 * MB,
                stagger_ps=us(30),
            )
            launch_flows(topo, flows, env)
            tap = PacketTap(topo.switches[1], kind=DATA) if tap_switch else None
            sim.run(until=round(us(150)))
            captured = (
                tuple((t, p.size, p.seq) for t, p in tap.records)
                if tap is not None
                else None
            )
            fused_into_tapped = sum(
                port.train_frames
                for node in _nodes(topo)
                for port in node.ports
                if port.peer is not None
                and port.peer.node is topo.switches[1]
            )
            stats = port_stats_fingerprint(topo)
            if tap is not None:
                tap.uninstall()
                # The gate must be restored for post-tap traffic.
                assert topo.switches[1].train_transparent()
            return captured, fused_into_tapped, stats

        engine.TRAINS = True
        cap_on, fused_on, stats_on = run(tap_switch=True)
        assert fused_on == 0, "a tapped switch must split trains per-frame"
        engine.TRAINS = False
        cap_off, fused_off, stats_off = run(tap_switch=True)
        assert cap_on == cap_off
        assert stats_on == stats_off
        # Untapped control run: fusion engages through the same switch.
        engine.TRAINS = True
        _, fused_untapped, _ = run(tap_switch=False)
        assert fused_untapped > 0

    def test_reinstall_under_tap_keeps_gate_closed(self):
        # install_lb while a tap wraps the switch must not reopen the
        # fused-path gate (the spy would silently miss fused frames);
        # uninstall recomputes the gate from live state and leaves the
        # instance pristine.
        from repro.experiments.common import build_cc_env
        from repro.lb import install_lb
        from repro.sim.engine import Simulator
        from repro.sim.rng import SeedSequenceFactory
        from repro.topo.base import LinkSpec
        from repro.topo.dumbbell import dumbbell

        engine.TRAINS = True
        sim = Simulator()
        topo = dumbbell(
            sim,
            n_senders=2,
            n_switches=2,
            link=LinkSpec(rate_gbps=100.0, prop_delay_ps=us(1.5)),
            switch_config=build_cc_env("fncc").switch_config,
            seeds=SeedSequenceFactory(1),
        )
        sw = topo.switches[0]
        assert sw.train_transparent()
        tap = PacketTap(sw, kind=DATA)
        assert not sw.train_transparent()
        install_lb(topo, "ecmp")  # mid-run strategy change under the tap
        assert not sw._train_ok, "reinstall must not reopen a tapped gate"
        tap.uninstall()
        assert "receive" not in sw.__dict__  # pristine: class method back
        assert sw.train_transparent()

    def test_hand_swapped_router_splits(self):
        # A router assigned directly (not via install_lb) must refuse
        # fusion even though the lb flags still advertise transparency.
        from repro.experiments.common import build_cc_env
        from repro.sim.engine import Simulator
        from repro.sim.rng import SeedSequenceFactory
        from repro.topo.base import LinkSpec
        from repro.topo.dumbbell import dumbbell

        engine.TRAINS = True
        sim = Simulator()
        topo = dumbbell(
            sim,
            n_senders=2,
            n_switches=2,
            link=LinkSpec(rate_gbps=100.0, prop_delay_ps=us(1.5)),
            switch_config=build_cc_env("fncc").switch_config,
            seeds=SeedSequenceFactory(1),
        )
        sw = topo.switches[0]
        assert sw.train_transparent()
        orig = sw.router
        sw.router = lambda s, p: orig(s, p)
        assert not sw.train_transparent()

    def test_trains_off_never_fuses_and_demotion_after_pfc(self):
        engine.TRAINS = False
        r = run_microbench(
            cc="fncc", link_rate_gbps=100.0, duration_us=120.0, seed=1
        )
        assert train_frames_total(r.topo) == 0
        # Real PFC traffic demotes the widened train window: a port that
        # has received XOFF keeps the tight commit_lookahead bound.
        engine.TRAINS = True
        r = run_microbench(
            cc="fncc",
            link_rate_gbps=100.0,
            duration_us=300.0,
            stagger_us=30.0,
            seed=3,
            pfc_xoff=40_000,
        )
        paused_ports = [
            p
            for n in _nodes(r.topo)
            for p in n.ports
            if p.stats.pause_received > 0
        ]
        assert paused_ports, "scenario must exercise PFC"
