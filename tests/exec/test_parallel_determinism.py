"""The headline guarantee of the sweep executor: serial (``jobs=1``) and
parallel (``jobs=N``) executions of the same specs produce byte-identical
results — FCT fingerprints for the CC × LB matrix, full sampled series
for multi-seed microbench runs — and a crashing spec surfaces its
traceback instead of hanging the pool."""

import pytest

from repro.exec import RunSpec, SweepError, SweepExecutor, run_sweep
from repro.experiments.lbmatrix import run_lbmatrix

#: One reduced lbmatrix slice: 2 LB strategies x 1 CC on the fat-tree
#: permutation scenario (the cells the acceptance tests pin).
SLICE = dict(
    lbs=("ecmp", "spray"),
    ccs=("fncc",),
    topos=("fattree",),
    workloads=("permutation",),
)


class TestLbmatrixSerialVsParallel:
    @pytest.fixture(scope="class")
    def serial_and_parallel(self):
        serial = run_lbmatrix(seed=7, jobs=1, **SLICE)
        parallel = run_lbmatrix(seed=7, jobs=2, **SLICE)
        return serial, parallel

    def test_same_keys(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert set(serial) == set(parallel)

    def test_fct_fingerprints_byte_identical(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        for key, cell in serial.items():
            assert cell.fct_fingerprint() == parallel[key].fct_fingerprint(), key
            assert len(cell.fct_fingerprint()) == cell.n_flows

    def test_statistics_identical(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        for key, cell in serial.items():
            other = parallel[key]
            assert cell.mean_fct_us == other.mean_fct_us
            assert cell.p99_fct_us == other.p99_fct_us
            assert cell.mean_slowdown == other.mean_slowdown
            assert cell.completed == other.completed
            assert cell.events_dispatched == other.events_dispatched

    def test_seed_still_matters(self, serial_and_parallel):
        serial, _ = serial_and_parallel
        other_seed = run_lbmatrix(seed=8, jobs=1, **SLICE)
        key = ("fattree", "permutation", "spray", "fncc")
        assert serial[key].fct_fingerprint() != other_seed[key].fct_fingerprint()


class TestMultiSeedMicrobench:
    """A multi-seed Fig. 9-style replication: same spec list run serially
    and on two workers must agree on every sampled series."""

    SEEDS = (1, 2, 3)

    def _specs(self):
        return [
            RunSpec(
                fn="repro.experiments.common:run_microbench_summary",
                kwargs=dict(cc="fncc", link_rate_gbps=100.0, duration_us=150.0),
                key=s,
                seed=s,
            )
            for s in self.SEEDS
        ]

    def test_fingerprints_byte_identical(self):
        serial = run_sweep(self._specs(), jobs=1)
        parallel = run_sweep(self._specs(), jobs=2)
        assert len(serial) == len(parallel) == len(self.SEEDS)
        for s, p in zip(serial, parallel):
            assert s.seed == p.seed
            assert s.fingerprint() == p.fingerprint()
            assert len(s.queue) > 0  # a real run, not an empty shell


class TestWorkerCrash:
    def test_bad_cc_in_worker_surfaces_traceback(self):
        """A spec that raises deep inside a worker (unknown CC scheme)
        must fail the sweep with the original error text — and the good
        spec's result must not hang behind it."""
        specs = [
            RunSpec(
                fn="repro.experiments.lbmatrix:run_lb_cell_summary",
                kwargs=dict(lb="ecmp", cc="bbr"),
                key="crash",
                seed=1,
            ),
        ]
        with pytest.raises(SweepError) as exc:
            SweepExecutor(jobs=2).map(specs * 2)
        assert "unknown CC scheme" in str(exc.value)
        assert "ValueError" in exc.value.worker_traceback

    def test_crash_results_collectable_without_raise(self):
        specs = [
            RunSpec(
                fn="repro.experiments.lbmatrix:run_lb_cell_summary",
                kwargs=dict(lb="ecmp", cc="bbr"),
                key="crash",
                seed=1,
            ),
            RunSpec(
                fn="repro.experiments.lbmatrix:run_lb_cell_summary",
                kwargs=dict(lb="ecmp", cc="fncc", n_flows=10),
                key="fine",
                seed=1,
            ),
        ]
        results = SweepExecutor(jobs=2, raise_on_error=False).map(specs)
        assert not results[0].ok and "unknown CC scheme" in results[0].error
        assert results[1].ok and results[1].value.completed > 0
