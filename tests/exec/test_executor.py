"""The sweep executor contract: spec resolution, in-process fallback,
spec-order reduce under out-of-order completion, and crash surfacing
(the original worker traceback, never a hung pool)."""

import os
import time

import pytest

from repro.exec import RunSpec, SweepError, SweepExecutor, resolve_callable, run_sweep


# -- module-level spec targets (picklable by reference) ---------------------


def add(a, b=0, seed=0):
    return a + b + seed


def slow_identity(value, delay_s=0.0):
    time.sleep(delay_s)
    return value


def my_pid(**_kw):
    return os.getpid()


def boom(message="kaboom"):
    raise ValueError(message)


def returns_unpicklable():
    return lambda: None


class TestRunSpec:
    def test_string_reference_resolves(self):
        fn = resolve_callable("test_executor:add")
        assert fn is add

    def test_bad_string_reference_rejected(self):
        with pytest.raises(ValueError):
            resolve_callable("no-colon-here")
        with pytest.raises(ModuleNotFoundError):
            resolve_callable("not.a.module:fn")

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            resolve_callable(42)
        with pytest.raises(TypeError):
            RunSpec(fn="os:sep").run()

    def test_seed_merged_into_kwargs(self):
        spec = RunSpec(fn=add, kwargs=dict(a=1, b=2), seed=10)
        assert spec.call_kwargs() == dict(a=1, b=2, seed=10)
        assert spec.run() == 13

    def test_conflicting_seed_rejected(self):
        spec = RunSpec(fn=add, kwargs=dict(a=1, seed=3), seed=4)
        with pytest.raises(ValueError, match="conflicts"):
            spec.call_kwargs()

    def test_matching_seed_allowed(self):
        spec = RunSpec(fn=add, kwargs=dict(a=1, seed=3), seed=3)
        assert spec.run() == 4


class TestInProcessFallback:
    def test_jobs1_runs_in_this_process(self):
        results = SweepExecutor(jobs=1).map([RunSpec(fn=my_pid)])
        assert results[0].value == os.getpid()
        assert results[0].pid == os.getpid()

    def test_jobs1_accepts_unpicklable_fn(self):
        # The in-process path never pickles: lambdas/closures are fine.
        results = SweepExecutor(jobs=1).map([RunSpec(fn=lambda: 7)])
        assert results[0].value == 7

    def test_single_spec_skips_pool_even_with_jobs(self):
        # One spec gains nothing from a pool; the executor runs it inline.
        results = SweepExecutor(jobs=4).map([RunSpec(fn=my_pid)])
        assert results[0].value == os.getpid()

    def test_values_in_spec_order(self):
        specs = [RunSpec(fn=add, kwargs=dict(a=i), key=i) for i in range(5)]
        assert run_sweep(specs) == [0, 1, 2, 3, 4]

    def test_empty_sweep(self):
        assert SweepExecutor(jobs=1).map([]) == []
        assert SweepExecutor(jobs=2).map([]) == []

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(jobs=0)

    def test_error_raises_sweep_error_with_traceback(self):
        specs = [RunSpec(fn=boom, kwargs=dict(message="in-process boom"), key="k")]
        with pytest.raises(SweepError) as exc:
            SweepExecutor(jobs=1).map(specs)
        assert "in-process boom" in str(exc.value)
        assert "ValueError" in exc.value.worker_traceback
        assert exc.value.key == "k"

    def test_raise_on_error_false_returns_error_results(self):
        specs = [
            RunSpec(fn=add, kwargs=dict(a=1), key="ok"),
            RunSpec(fn=boom, key="bad"),
            RunSpec(fn=add, kwargs=dict(a=2), key="ok2"),
        ]
        results = SweepExecutor(jobs=1, raise_on_error=False).map(specs)
        assert [r.ok for r in results] == [True, False, True]
        assert results[0].value == 1 and results[2].value == 2
        assert "kaboom" in results[1].error


class TestProcessPool:
    """jobs>1: real spawned workers.  Kept small — spawn pays an
    interpreter + import per worker."""

    def test_results_cross_process_and_reduce_in_spec_order(self):
        # The first spec sleeps so it *finishes last*; the reduce must
        # still return spec order, and at least one run must have
        # executed outside this process.
        specs = [
            RunSpec(fn=slow_identity, kwargs=dict(value=0, delay_s=0.4), key=0),
            RunSpec(fn=slow_identity, kwargs=dict(value=1), key=1),
            RunSpec(fn=my_pid, key=2),
        ]
        results = SweepExecutor(jobs=2).map(specs)
        assert [r.value for r in results[:2]] == [0, 1]
        assert [r.index for r in results] == [0, 1, 2]
        assert results[2].value != os.getpid()
        assert all(r.pid != os.getpid() for r in results)

    def test_worker_exception_surfaces_original_traceback(self):
        specs = [
            RunSpec(fn=add, kwargs=dict(a=1), key="fine"),
            RunSpec(fn=boom, kwargs=dict(message="worker boom"), key="dead"),
        ]
        with pytest.raises(SweepError) as exc:
            SweepExecutor(jobs=2).map(specs)
        msg = str(exc.value)
        # The original traceback text, not a bare pool error: the
        # exception type, the message, and the raising function all
        # survive the process boundary.
        assert "ValueError: worker boom" in msg
        assert "in boom" in msg
        assert exc.value.key == "dead"

    def test_unpicklable_spec_rejected_with_attribution(self):
        specs = [
            RunSpec(fn=add, kwargs=dict(a=1), key="ok"),
            RunSpec(fn=lambda: 1, key="closure"),
        ]
        with pytest.raises(SweepError, match="not picklable") as exc:
            SweepExecutor(jobs=2).map(specs)
        assert exc.value.key == "closure"
        assert exc.value.index == 1

    def test_unpicklable_spec_with_raise_on_error_false_keeps_others(self):
        # A spec that can't be shipped must not discard the sweep: the
        # good specs still run and the bad one comes back as an error
        # result attributed to this (submission-side) process.
        specs = [
            RunSpec(fn=add, kwargs=dict(a=1), key="ok"),
            RunSpec(fn=lambda: 1, key="closure"),
            RunSpec(fn=add, kwargs=dict(a=2), key="ok2"),
        ]
        results = SweepExecutor(jobs=2, raise_on_error=False).map(specs)
        assert [r.ok for r in results] == [True, False, True]
        assert results[0].value == 1 and results[2].value == 2
        assert "not picklable" in results[1].error
        assert results[1].pid == os.getpid()

    def test_unpicklable_return_value_is_clean_error(self):
        specs = [
            RunSpec(fn=returns_unpicklable, key="lambda-back"),
            RunSpec(fn=add, kwargs=dict(a=1), key="ok"),
        ]
        with pytest.raises(SweepError, match="unpicklable value"):
            SweepExecutor(jobs=2).map(specs)

    def test_bad_start_method_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(jobs=2, start_method="teleport")
