"""Engine semantics: ordering, cancellation, horizons, reentrancy."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self, sim):
        log = []
        sim.schedule(30, log.append, "c")
        sim.schedule(10, log.append, "a")
        sim.schedule(20, log.append, "b")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_run_in_insertion_order(self, sim):
        log = []
        for tag in "abc":
            sim.schedule(5, log.append, tag)
        sim.run()
        assert log == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(123, lambda _: seen.append(sim.now))
        sim.run()
        assert seen == [123]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda _: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(10, lambda _: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda _: None)

    def test_schedule_from_callback(self, sim):
        log = []

        def first(_):
            sim.schedule(5, log.append, "second")

        sim.schedule(10, first)
        sim.run()
        assert log == ["second"]
        assert sim.now == 15


class TestCancellation:
    def test_cancelled_event_does_not_run(self, sim):
        log = []
        ev = sim.schedule(10, log.append, "x")
        ev.cancel()
        sim.run()
        assert log == []

    def test_cancel_is_idempotent(self, sim):
        ev = sim.schedule(10, lambda _: None)
        ev.cancel()
        ev.cancel()
        assert sim.run() == 0

    def test_cancel_one_of_many(self, sim):
        log = []
        sim.schedule(1, log.append, "keep1")
        ev = sim.schedule(2, log.append, "drop")
        sim.schedule(3, log.append, "keep2")
        ev.cancel()
        sim.run()
        assert log == ["keep1", "keep2"]


class TestRunUntil:
    def test_until_is_inclusive(self, sim):
        log = []
        sim.schedule(100, log.append, "at")
        sim.schedule(101, log.append, "after")
        sim.run(until=100)
        assert log == ["at"]

    def test_clock_lands_on_horizon_when_queue_drains(self, sim):
        sim.schedule(10, lambda _: None)
        sim.run(until=500)
        assert sim.now == 500

    def test_remaining_events_run_on_next_call(self, sim):
        log = []
        sim.schedule(100, log.append, "late")
        sim.run(until=50)
        assert log == []
        sim.run(until=150)
        assert log == ["late"]

    def test_dispatch_count_returned(self, sim):
        for i in range(5):
            sim.schedule(i + 1, lambda _: None)
        assert sim.run(until=3) == 3
        assert sim.run() == 2

    def test_events_dispatched_accumulates(self, sim):
        for i in range(4):
            sim.schedule(i, lambda _: None)
        sim.run()
        assert sim.events_dispatched == 4


class TestStopAndStep:
    def test_stop_halts_run(self, sim):
        log = []
        sim.schedule(1, lambda _: (log.append(1), sim.stop()))
        sim.schedule(2, log.append, 2)
        sim.run()
        assert log == [1]
        sim.run()
        assert log == [1, 2]

    def test_step_single_event(self, sim):
        log = []
        sim.schedule(1, log.append, "a")
        sim.schedule(2, log.append, "b")
        assert sim.step() is True
        assert log == ["a"]
        assert sim.step() is True
        assert sim.step() is False

    def test_run_not_reentrant(self, sim):
        def naughty(_):
            sim.run()

        sim.schedule(1, naughty)
        with pytest.raises(SimulationError):
            sim.run()


class TestPeek:
    def test_peek_returns_next_live_time(self, sim):
        ev = sim.schedule(5, lambda _: None)
        sim.schedule(9, lambda _: None)
        assert sim.peek() == 5
        ev.cancel()
        assert sim.peek() == 9

    def test_peek_empty(self, sim):
        assert sim.peek() is None


class TestScale:
    def test_many_events_in_order(self, sim):
        import random

        rng = random.Random(0)
        times = [rng.randrange(1, 10_000_000) for _ in range(5000)]
        seen = []
        for t in times:
            sim.schedule(t, seen.append, t)
        sim.run()
        assert seen == sorted(times)
