"""Deterministic RNG plumbing and the stable hash used by ECMP."""

import pytest

from repro.sim.rng import SeedSequenceFactory, stable_hash64


class TestSeedSequenceFactory:
    def test_same_name_same_stream_object(self):
        f = SeedSequenceFactory(1)
        assert f.stream("a") is f.stream("a")

    def test_streams_reproducible_across_factories(self):
        a = SeedSequenceFactory(1).stream("traffic")
        b = SeedSequenceFactory(1).stream("traffic")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_differ(self):
        f = SeedSequenceFactory(1)
        xs = [f.stream("a").random() for _ in range(5)]
        ys = [f.stream("b").random() for _ in range(5)]
        assert xs != ys

    def test_different_roots_differ(self):
        a = SeedSequenceFactory(1).stream("x").random()
        b = SeedSequenceFactory(2).stream("x").random()
        assert a != b

    def test_creation_order_does_not_matter(self):
        f1 = SeedSequenceFactory(9)
        f1.stream("first")
        v1 = f1.stream("second").random()
        f2 = SeedSequenceFactory(9)
        v2 = f2.stream("second").random()
        assert v1 == v2

    def test_numpy_stream(self):
        f = SeedSequenceFactory(3)
        a = f.numpy_stream("n").random(4)
        b = SeedSequenceFactory(3).numpy_stream("n").random(4)
        assert (a == b).all()

    def test_rejects_bad_seed(self):
        with pytest.raises(ValueError):
            SeedSequenceFactory(-1)
        with pytest.raises(ValueError):
            SeedSequenceFactory(2**63)

    def test_child_seed_stable(self):
        assert SeedSequenceFactory(5).child_seed("q") == SeedSequenceFactory(
            5
        ).child_seed("q")


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64(1, 2, 3) == stable_hash64(1, 2, 3)

    def test_order_sensitive(self):
        assert stable_hash64(1, 2) != stable_hash64(2, 1)

    def test_separator_prevents_concat_collisions(self):
        assert stable_hash64(0x0102, 0x03) != stable_hash64(0x01, 0x0203)

    def test_spreads_small_inputs(self):
        # ECMP uses hash % n; consecutive flow ids must not all map to the
        # same bucket.
        buckets = {stable_hash64(1, 2, fid) % 4 for fid in range(64)}
        assert len(buckets) == 4

    def test_64_bit_range(self):
        for args in [(0,), (1, 2, 3), (2**63, 17)]:
            h = stable_hash64(*args)
            assert 0 <= h < 2**64
