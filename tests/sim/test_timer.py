"""Timer and Periodic behaviour (DCQCN and the monitors depend on these)."""

from repro.sim.timer import Periodic, Timer

import pytest


class TestTimer:
    def test_fires_once(self, sim):
        log = []
        t = Timer(sim, log.append)
        t.start(100, "payload")
        sim.run()
        assert log == ["payload"]
        assert not t.armed

    def test_restart_supersedes(self, sim):
        log = []
        t = Timer(sim, log.append)
        t.start(100, "first")
        t.start(50, "second")
        sim.run()
        assert log == ["second"]

    def test_cancel(self, sim):
        log = []
        t = Timer(sim, log.append)
        t.start(100)
        t.cancel()
        sim.run()
        assert log == []

    def test_rearm_from_callback(self, sim):
        log = []

        def fire(arg):
            log.append(sim.now)
            if len(log) < 3:
                t.start(10)

        t = Timer(sim, fire)
        t.start(10)
        sim.run()
        assert log == [10, 20, 30]

    def test_expires_at(self, sim):
        t = Timer(sim, lambda _: None)
        assert t.expires_at is None
        t.start(250)
        assert t.expires_at == 250

    def test_armed_property(self, sim):
        t = Timer(sim, lambda _: None)
        assert not t.armed
        t.start(10)
        assert t.armed
        sim.run()
        assert not t.armed


class TestPeriodic:
    def test_fixed_cadence(self, sim):
        ticks = []
        p = Periodic(sim, 100, ticks.append)
        p.start()
        sim.run(until=350)
        assert ticks == [100, 200, 300]

    def test_offset_start(self, sim):
        ticks = []
        p = Periodic(sim, 100, ticks.append)
        p.start(offset=0)
        sim.run(until=250)
        assert ticks == [0, 100, 200]

    def test_stop(self, sim):
        ticks = []
        p = Periodic(sim, 10, ticks.append)
        p.start()
        sim.run(until=25)
        p.stop()
        sim.run(until=100)
        assert ticks == [10, 20]

    def test_start_idempotent(self, sim):
        ticks = []
        p = Periodic(sim, 10, ticks.append)
        p.start()
        p.start()
        sim.run(until=10)
        assert ticks == [10]

    def test_rejects_nonpositive_interval(self, sim):
        with pytest.raises(ValueError):
            Periodic(sim, 0, lambda t: None)

    def test_stop_from_callback(self, sim):
        ticks = []

        def cb(t):
            ticks.append(t)
            if len(ticks) == 2:
                p.stop()

        p = Periodic(sim, 10, cb)
        p.start()
        sim.run(until=1000)
        assert ticks == [10, 20]
