"""Runtime-sanitizer suite (DESIGN.md §9): event-tie detector and the
packet-pool use-after-release sanitizer.

The two load-bearing claims, pinned here:

* the tie detector *sees* a seeded ordering hazard — two callbacks
  scheduled at the same timestamp from unrelated call sites — and
  attributes both sides to ``module:qualname``;
* turning the sanitizers on perturbs nothing: experiment fingerprints are
  byte-identical with ``REPRO_SANITIZE`` unset, ``tie``, ``pool``, or both
  (the zero-perturbation harness the trains/obs features already answer to).
"""

import os

import pytest

from repro.net.host import Host
from repro.net.packet import (
    DATA,
    Packet,
    PacketPool,
    SanitizingPacketPool,
    UseAfterReleaseError,
    _PoisonedPacket,
)
from repro.sim.engine import Simulator
from repro.sim.sanitize import (
    TIE_REPORT_SCHEMA,
    callback_site,
    merge_tie_reports,
    parse_sanitize,
)

# -- module-level callbacks: the attribution targets -------------------------


def cb_alpha(_):
    pass


def cb_beta(_):
    pass


HERE = __name__  # the module half of this file's module:qualname sites


# -- sanitize spec parsing ---------------------------------------------------


def test_parse_sanitize_forms():
    assert parse_sanitize(None) == frozenset()
    assert parse_sanitize("") == frozenset()
    assert parse_sanitize("off") == frozenset()
    assert parse_sanitize("tie") == {"tie"}
    assert parse_sanitize("tie,pool") == {"tie", "pool"}
    assert parse_sanitize(" pool ; tie ") == {"tie", "pool"}
    assert parse_sanitize(["pool"]) == {"pool"}


def test_parse_sanitize_rejects_unknown():
    with pytest.raises(ValueError, match="unknown sanitize mode"):
        parse_sanitize("tie,typo")


def test_env_default_read_at_construction(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "tie,pool")
    sim = Simulator()
    assert sim.sanitize == {"tie", "pool"} and sim.tie_recorder is not None
    monkeypatch.delenv("REPRO_SANITIZE")
    off = Simulator()
    assert off.sanitize == frozenset() and off.tie_recorder is None
    assert off.tie_report() is None


def test_explicit_arg_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "tie")
    sim = Simulator(sanitize="")
    assert sim.sanitize == frozenset()


# -- event-tie detector ------------------------------------------------------


def test_injected_tie_detected_and_attributed():
    """The seeded ordering hazard: two callbacks, same timestamp, dispatch
    order decided only by insertion sequence.  The detector must record the
    pair and name both sites."""
    sim = Simulator(sanitize="tie")
    sim.schedule(100, cb_alpha)
    sim.schedule(100, cb_beta)
    sim.schedule(250, cb_alpha)  # un-tied: must not be recorded
    sim.run()
    rep = sim.tie_report()
    assert rep["schema"] == TIE_REPORT_SCHEMA
    assert rep["tied_pops"] == 1
    assert rep["total_pops"] == 3
    [site] = rep["sites"]
    assert site["popped"] == f"{HERE}:cb_alpha"
    assert site["pending"] == f"{HERE}:cb_beta"
    assert site["count"] == 1
    assert site["first_time_ps"] == 100


def test_tie_group_of_n_records_n_minus_1_pops():
    sim = Simulator(sanitize="tie")
    for _ in range(4):
        sim.schedule(77, cb_alpha)
    sim.run()
    rep = sim.tie_report()
    assert rep["tied_pops"] == 3
    [site] = rep["sites"]
    assert site["count"] == 3
    assert site["popped"] == site["pending"] == f"{HERE}:cb_alpha"


def test_bound_method_attribution_aggregates_by_class():
    class Ticker:
        __slots__ = ("fired",)

        def __init__(self):
            self.fired = 0

        def tick(self, _):
            self.fired += 1

    a, b = Ticker(), Ticker()
    sim = Simulator(sanitize="tie")
    sim.schedule(5, a.tick)
    sim.schedule(5, b.tick)
    sim.run()
    [site] = sim.tie_report()["sites"]
    # both instances collapse onto the one qualified function
    assert site["popped"].endswith("Ticker.tick") and site["popped"] == site["pending"]
    assert callback_site(a.tick) == site["popped"]


def test_cancelled_event_does_not_tie():
    sim = Simulator(sanitize="tie")
    sim.schedule(100, cb_alpha)
    ev = sim.schedule(100, cb_beta)
    ev.cancel()
    sim.run()
    rep = sim.tie_report()
    assert rep["tied_pops"] == 0 and rep["sites"] == []


def test_tie_detection_respects_run_horizon():
    sim = Simulator(sanitize="tie")
    sim.schedule(100, cb_alpha)
    sim.schedule(100, cb_beta)
    sim.schedule(900, cb_alpha)
    assert sim.run(until=500) == 2
    assert sim.tie_report()["tied_pops"] == 1
    assert sim.now == 500
    sim.run(until=1000)
    assert sim.tie_report()["total_pops"] == 3


def test_tie_report_merge():
    reps = []
    for seed_sites in (("a", "b"), ("a", "b"), ("c", "c")):
        reps.append(
            {
                "schema": TIE_REPORT_SCHEMA,
                "total_pops": 10,
                "tied_pops": 1,
                "site_pairs": 1,
                "sites": [
                    {
                        "popped": seed_sites[0],
                        "pending": seed_sites[1],
                        "count": 1,
                        "first_time_ps": 50,
                    }
                ],
            }
        )
    merged = merge_tie_reports(reps + [None])
    assert merged["total_pops"] == 30 and merged["tied_pops"] == 3
    assert [(s["popped"], s["count"]) for s in merged["sites"]] == [("a", 2), ("c", 1)]


# -- packet-pool use-after-release sanitizer ---------------------------------


def make_pool():
    # stride=1 = full poisoning: every lifecycle tracked (the sampled
    # default is pinned separately below).
    return SanitizingPacketPool(enabled=True, stride=1)


def test_uar_read_raises_with_both_stacks():
    pool = make_pool()
    pkt = pool.acquire(DATA, flow_id=3)
    pool.release(pkt)
    with pytest.raises(UseAfterReleaseError) as exc:
        _ = pkt.seq
    msg = str(exc.value)
    assert "allocated at:" in msg and "released at:" in msg
    # both stacks point into this test file
    assert msg.count("test_sanitizers.py") >= 2


def test_uar_write_raises():
    pool = make_pool()
    pkt = pool.acquire(DATA)
    pool.release(pkt)
    with pytest.raises(UseAfterReleaseError, match="write of 'ecn'"):
        pkt.ecn = True


def test_double_release_raises():
    pool = make_pool()
    pkt = pool.acquire(DATA)
    pool.release(pkt)
    with pytest.raises(UseAfterReleaseError, match="double release"):
        pool.release(pkt)


def test_revive_restores_a_fully_usable_packet():
    pool = make_pool()
    pkt = pool.acquire(DATA, flow_id=3, seq=512)
    pool.release(pkt)
    again = pool.acquire(DATA, flow_id=9)
    assert again is pkt  # recycled, not reallocated
    # a live frame — tracked or not — is always a plain Packet; tracking
    # rides the pool's dict, never the object's class
    assert type(again) is Packet
    assert again.flow_id == 9 and again.seq == 0 and again.int_records is None
    again.seq = 4096  # plain attribute access works again
    pool.release(again)  # and the cycle repeats


def test_disabled_pool_never_poisons():
    pool = SanitizingPacketPool(enabled=False, stride=1)
    pkt = pool.acquire(DATA, flow_id=3)
    pool.release(pkt)  # no-op: pool disabled
    assert pkt.flow_id == 3  # still a live, readable frame


def test_sampled_stride_tracks_first_and_every_nth_lifecycle():
    # GWP-ASan-style sampling: lifecycle 1 is always tracked (a broken
    # call site fails on its first packet), then every stride-th.  A
    # tracked lifecycle is one with an allocation stack on record — only
    # those poison on release; live frames stay plain Packets either way.
    pool = SanitizingPacketPool(enabled=True, stride=4)
    tracked = []
    pkts = [pool.acquire(DATA) for _ in range(9)]
    tracked = [id(p) in pool._alloc_sites for p in pkts]
    assert tracked == [True, False, False, False, True, False, False, False, True]
    for p in pkts:
        pool.release(p)
    assert sum(type(p) is not Packet for p in pkts) == 3  # only tracked poison


def test_stride_validation_and_env_default(monkeypatch):
    with pytest.raises(ValueError, match="stride"):
        SanitizingPacketPool(enabled=True, stride=0)
    monkeypatch.setenv("REPRO_POOL_STRIDE", "7")
    assert SanitizingPacketPool(enabled=True).stride == 7
    monkeypatch.delenv("REPRO_POOL_STRIDE")
    assert SanitizingPacketPool(enabled=True).stride >= 1
    assert SanitizingPacketPool(enabled=True, stride=3).stride == 3  # arg wins


def test_host_pool_class_follows_sim_sanitize():
    sim = Simulator(sanitize="pool")
    host = Host(sim, "h0", 0)
    assert type(host.pkt_pool) is SanitizingPacketPool
    plain = Host(Simulator(), "h1", 1)
    assert type(plain.pkt_pool) is PacketPool


# -- zero-perturbation: sanitizers must not change results -------------------


@pytest.mark.parametrize("modes", ["tie", "pool", "tie,pool"])
def test_fingerprints_byte_identical_with_sanitizers(modes, monkeypatch):
    from repro.experiments.fct_experiment import run_fct_experiment

    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    base = run_fct_experiment(cc="fncc", n_flows=12, seed=11).fct_fingerprint()
    monkeypatch.setenv("REPRO_SANITIZE", modes)
    sanitized = run_fct_experiment(cc="fncc", n_flows=12, seed=11).fct_fingerprint()
    assert sanitized == base
