"""Engine edge cases around the hot-path machinery: lazy cancellation,
peek() pruning, run(until=...) clock advance, non-reentrancy, and the
event free list (recycling must never resurrect a cancelled callback)."""

import pytest

from repro.sim.engine import Event, SimulationError, Simulator


class TestLazyCancellation:
    def test_cancelled_event_stays_in_heap_until_popped(self, sim):
        ev = sim.schedule(10, lambda _: None)
        ev.cancel()
        assert sim.queue_len() == 1  # lazy: not physically removed
        sim.run()
        assert sim.queue_len() == 0
        assert sim.events_dispatched == 0

    def test_cancel_inside_own_callback_is_harmless(self, sim):
        log = []

        def cb(_):
            holder[0].cancel()  # self-cancel during dispatch
            log.append("ran")

        holder = [sim.schedule(5, cb)]
        sim.run()
        assert log == ["ran"]

    def test_cancel_via_direct_alive_flag(self, sim):
        # Internal fast path used by the sender's pace event.
        log = []
        ev = sim.schedule(5, log.append, "x")
        ev.alive = False
        sim.run()
        assert log == []


class TestPeekPruning:
    def test_peek_prunes_dead_head(self, sim):
        ev = sim.schedule(5, lambda _: None)
        sim.schedule(9, lambda _: None)
        ev.cancel()
        assert sim.peek() == 9
        # The dead head was physically removed (and recycled).
        assert sim.queue_len() == 1

    def test_peek_drains_all_dead(self, sim):
        evs = [sim.schedule(i + 1, lambda _: None) for i in range(5)]
        for ev in evs:
            ev.cancel()
        assert sim.peek() is None
        assert sim.queue_len() == 0


class TestRunUntilClock:
    def test_clock_advances_to_horizon_on_drained_queue(self, sim):
        sim.schedule(10, lambda _: None)
        sim.run(until=500)
        assert sim.now == 500

    def test_clock_advances_even_with_empty_queue(self, sim):
        sim.run(until=123)
        assert sim.now == 123

    def test_event_exactly_at_horizon_runs(self, sim):
        log = []
        sim.schedule(100, log.append, "edge")
        sim.run(until=100)
        assert log == ["edge"]
        assert sim.now == 100

    def test_event_past_horizon_survives_for_next_run(self, sim):
        log = []
        sim.schedule(100, log.append, "late")
        sim.run(until=50)
        assert log == []
        assert sim.queue_len() == 1  # pushed back, not lost
        sim.run(until=150)
        assert log == ["late"]


class TestReentrancy:
    def test_run_inside_callback_raises(self, sim):
        def naughty(_):
            sim.run()

        sim.schedule(1, naughty)
        with pytest.raises(SimulationError):
            sim.run()

    def test_engine_usable_after_reentrancy_error(self, sim):
        def naughty(_):
            sim.run()

        sim.schedule(1, naughty)
        with pytest.raises(SimulationError):
            sim.run()
        log = []
        sim.schedule(1, log.append, "ok")
        sim.run()
        assert log == ["ok"]


class TestEventPool:
    def test_dispatched_events_are_recycled(self, sim):
        sim.schedule(1, lambda _: None)
        sim.run()
        assert sim.pool_len() == 1
        ev = sim.schedule(2, lambda _: None)
        assert sim.pool_len() == 0  # shell came from the pool
        ev.cancel()
        sim.run()
        assert sim.pool_len() == 1  # lazily-deleted shells recycle too

    def test_recycling_never_resurrects_cancelled_callback(self, sim):
        """A recycled shell must run only its new callback, never the
        cancelled one it previously carried."""
        log = []
        ev = sim.schedule(5, log.append, "OLD")
        ev.cancel()
        sim.run()  # pops + recycles the dead shell
        reused = sim.schedule(7, log.append, "NEW")
        assert reused is ev  # same object, recycled
        sim.run()
        assert log == ["NEW"]

    def test_dispatch_recycle_resets_payload(self, sim):
        payload = object()
        sim.schedule(1, lambda _: None, payload)
        sim.run()
        # The pooled shell must not pin the old callback/payload alive.
        assert sim._pool[0].fn is None
        assert sim._pool[0].arg is None

    def test_keys_strictly_ordered_for_ties(self, sim):
        log = []
        a = sim.schedule(5, log.append, "a")
        b = sim.schedule(5, log.append, "b")
        assert a.key < b.key  # same time, insertion order breaks the tie
        sim.run()
        assert log == ["a", "b"]


class TestScheduleReuse:
    def test_reuse_from_own_callback_fires_again(self, sim):
        log = []

        def tick(_):
            log.append(sim.now)
            if len(log) < 3:
                sim.schedule_reuse(holder[0], 10)

        holder = [sim.schedule(10, tick)]
        sim.run()
        assert log == [10, 20, 30]

    def test_reused_event_is_not_pooled_mid_flight(self, sim):
        def tick(_):
            if sim.now < 30:
                sim.schedule_reuse(holder[0], 10)

        holder = [sim.schedule(10, tick)]
        sim.run()
        # One shell total, recycled only after its final dispatch.
        assert sim.pool_len() == 1

    def test_reuse_negative_delay_rejected(self, sim):
        def cb(_):
            with pytest.raises(SimulationError):
                sim.schedule_reuse(holder[0], -1)

        holder = [sim.schedule(1, cb)]
        sim.run()


class TestEventOrderable:
    def test_event_lt_orders_by_time_then_seq(self):
        a = Event(10, 1, lambda _: None, None)
        b = Event(10, 2, lambda _: None, None)
        c = Event(5, 3, lambda _: None, None)
        assert a < b
        assert c < a
        assert not (b < a)


class TestReuseThenCancel:
    """Regression: a schedule_reuse'd event cancelled later in the same
    callback is back in the heap — the dispatcher must NOT recycle it."""

    def test_periodic_stopping_itself_does_not_corrupt_pool(self, sim):
        from repro.sim.timer import Periodic

        ticks = []

        def fn(now):
            ticks.append(now)
            if len(ticks) == 2:
                periodic.stop()  # cancels the event _tick just re-armed

        periodic = Periodic(sim, 100, fn)
        periodic.start()
        log = []
        sim.schedule(300, log.append, "other")
        # Schedule-heavy follow-up that would reuse a corrupted shell.
        sim.schedule(505, log.append, "late")
        sim.run()
        assert ticks == [100, 200]
        assert log == ["other", "late"]

    def test_clock_stays_monotonic_after_reuse_cancel(self, sim):
        from repro.sim.timer import Periodic

        seen = []

        def fn(now):
            if now >= 200:
                periodic.stop()

        periodic = Periodic(sim, 100, fn)
        periodic.start()
        sim.schedule(300, lambda _: seen.append(sim.now))
        ev = sim.schedule(505, lambda _: seen.append(sim.now))
        assert ev is not None
        sim.run()
        assert seen == [300, 505]  # strictly ordered, no time travel

    def test_rearmed_then_cancelled_shell_recycled_via_lazy_deletion(self, sim):
        def fn(_):
            sim.schedule_reuse(holder[0], 50)
            holder[0].cancel()

        holder = [sim.schedule(10, fn)]
        sim.run()
        # The shell was pooled exactly once (at its lazy-deletion pop).
        assert sim.pool_len() == 1
