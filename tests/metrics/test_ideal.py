"""Ideal-FCT pipeline arithmetic — validated against the real simulator."""

import pytest

from repro.metrics.ideal import ideal_fct_ps
from repro.transport.sender import HEADER_BYTES
from repro.units import DEFAULT_MTU, serialization_ps, us


class TestClosedForm:
    def test_single_link_single_frame(self):
        links = [(100.0, us(1))]
        size = 500
        expected = serialization_ps(500 + HEADER_BYTES, 100.0) + us(1)
        assert ideal_fct_ps(size, links) == expected

    def test_two_links_single_frame_store_and_forward(self):
        links = [(100.0, us(1)), (100.0, us(2))]
        size = 500
        frame = 500 + HEADER_BYTES
        expected = 2 * serialization_ps(frame, 100.0) + us(3)
        assert ideal_fct_ps(size, links) == expected

    def test_multi_frame_single_link_back_to_back(self):
        links = [(100.0, 0)]
        payload = DEFAULT_MTU - HEADER_BYTES
        size = 3 * payload
        expected = 3 * serialization_ps(DEFAULT_MTU, 100.0)
        assert ideal_fct_ps(size, links) == expected

    def test_pipeline_overlap_two_links(self):
        # K full frames over H equal links: (K-1 + H) frame times.
        links = [(100.0, 0), (100.0, 0)]
        payload = DEFAULT_MTU - HEADER_BYTES
        size = 5 * payload
        frame_t = serialization_ps(DEFAULT_MTU, 100.0)
        assert ideal_fct_ps(size, links) == (5 - 1 + 2) * frame_t

    def test_bottleneck_dominates(self):
        # Second link at half rate: completion governed by the slow hop.
        links = [(100.0, 0), (50.0, 0)]
        payload = DEFAULT_MTU - HEADER_BYTES
        size = 10 * payload
        slow = serialization_ps(DEFAULT_MTU, 50.0)
        fast = serialization_ps(DEFAULT_MTU, 100.0)
        assert ideal_fct_ps(size, links) == fast + 10 * slow

    def test_validation(self):
        with pytest.raises(ValueError):
            ideal_fct_ps(0, [(100.0, 0)])
        with pytest.raises(ValueError):
            ideal_fct_ps(100, [])

    def test_cached_results_consistent(self):
        links = ((100.0, us(1)), (100.0, us(1)))
        assert ideal_fct_ps(10**6, links) == ideal_fct_ps(10**6, links)


class TestAgainstSimulator:
    """The definition of 'ideal': a lone flow on an empty network must hit
    the analytic value exactly (modulo ACK-clocking artifacts, which a
    BDP-window sender on an idle path does not incur)."""

    @pytest.mark.parametrize("size_bytes", [100, 1470, 10_000, 250_000, 2_000_000])
    def test_single_flow_matches(self, size_bytes):
        from repro.experiments.common import build_cc_env, launch_flows
        from repro.sim.engine import Simulator
        from repro.sim.rng import SeedSequenceFactory
        from repro.topo.base import LinkSpec
        from repro.topo.dumbbell import dumbbell
        from repro.transport.flow import Flow
        from repro.units import us as us_

        sim = Simulator()
        env = build_cc_env("fncc")
        topo = dumbbell(
            sim,
            n_senders=1,
            n_switches=3,
            link=LinkSpec(100.0, us_(1.5)),
            switch_config=env.switch_config,
            seeds=SeedSequenceFactory(1),
        )
        flow = Flow(0, 0, topo.hosts[-1].host_id, size_bytes)
        launch_flows(topo, [flow], env)
        sim.run(until=us_(500_000))
        rqp = topo.hosts[-1].receivers[0]
        assert rqp.completed
        measured = rqp.finish_ps
        ideal = ideal_fct_ps(size_bytes, topo.path_links(0, flow.dst))
        # Never faster than ideal; and not much slower.  FNCC/HPCC target
        # eta = 95% utilization by design, so long lone flows legitimately
        # run ~5-9% above ideal; short flows finish inside one window and
        # should be within a couple of frame times.
        assert measured >= ideal
        slack = 2 * serialization_ps(DEFAULT_MTU, 100.0)
        assert measured <= ideal * 1.10 + slack
