"""Samplers: cadence, values, and stop semantics."""

import pytest

from repro.metrics.monitors import (
    QueueSampler,
    RateSampler,
    UtilizationSampler,
    pause_frame_count,
)
from repro.units import us


def loaded_dumbbell(sim, cc="fncc"):
    from helpers import make_dumbbell
    from repro.experiments.common import launch_flows
    from repro.traffic.generator import staggered_elephants
    from repro.units import MB

    topo, env = make_dumbbell(sim, cc=cc)
    flows = staggered_elephants(
        [h.host_id for h in topo.hosts[:2]], topo.hosts[-1].host_id, 5 * MB, us(50)
    )
    qps = launch_flows(topo, flows, env)
    return topo, qps


class TestQueueSampler:
    def test_samples_at_cadence(self, sim):
        topo, qps = loaded_dumbbell(sim)
        mon = QueueSampler(sim, topo.switches[0].ports[0], interval_ps=us(2))
        sim.run(until=us(20))
        # offset=0 sample plus one every 2 us.
        assert len(mon.series) == 11

    def test_congested_port_sees_queue(self, sim):
        topo, qps = loaded_dumbbell(sim)
        sw = topo.switches[0]
        port_idx = topo.graph.edges["sw0", "sw1"]["ports"]["sw0"]
        mon = QueueSampler(sim, sw.ports[port_idx], interval_ps=us(1))
        sim.run(until=us(200))
        assert mon.series.max() > 0  # two senders into one egress must queue

    def test_stop_freezes_series(self, sim):
        topo, qps = loaded_dumbbell(sim)
        # Context-manager form: leaving the block stops the sampler, so a
        # raise mid-run can't leak an armed Periodic.
        with QueueSampler(sim, topo.switches[0].ports[0], interval_ps=us(1)) as mon:
            sim.run(until=us(10))
        n = len(mon.series)
        sim.run(until=us(50))
        assert len(mon.series) == n

    def test_exception_in_with_block_still_stops(self, sim):
        topo, qps = loaded_dumbbell(sim)
        with pytest.raises(RuntimeError):
            with QueueSampler(
                sim, topo.switches[0].ports[0], interval_ps=us(1)
            ) as mon:
                sim.run(until=us(10))
                raise RuntimeError("injected")
        n = len(mon.series)
        sim.run(until=us(50))
        assert len(mon.series) == n

    def test_engine_stop_monitors_disarms_all(self, sim):
        topo, qps = loaded_dumbbell(sim)
        a = QueueSampler(sim, topo.switches[0].ports[0], interval_ps=us(1))
        b = QueueSampler(sim, topo.switches[1].ports[0], interval_ps=us(2))
        sim.run(until=us(10))
        sim.stop_monitors()
        counts = (len(a.series), len(b.series))
        sim.run(until=us(50))
        assert (len(a.series), len(b.series)) == counts
        sim.stop_monitors()  # idempotent


class TestRateSampler:
    def test_zero_before_start_and_after_finish(self, sim):
        from repro.experiments.common import build_cc_env, launch_flows
        from helpers import make_dumbbell
        from repro.transport.flow import Flow

        topo, env = make_dumbbell(sim)
        flow = Flow(0, 0, topo.hosts[-1].host_id, 50_000, start_ps=us(20))
        qps = launch_flows(topo, [flow], env)
        mon = RateSampler(sim, qps[0], interval_ps=us(1))
        sim.run(until=us(200))
        assert mon.series.value_at(us(5)) == 0.0
        assert mon.series.value_at(us(199)) == 0.0  # finished by then
        assert mon.series.max() > 0.0

    def test_rate_capped_at_line(self, sim):
        topo, qps = loaded_dumbbell(sim)
        mon = RateSampler(sim, qps[0], interval_ps=us(1))
        sim.run(until=us(100))
        assert mon.series.max() <= 100.0


class TestUtilizationSampler:
    def test_full_rate_gives_unity(self, sim):
        topo, qps = loaded_dumbbell(sim)
        port_idx = topo.graph.edges["sw0", "sw1"]["ports"]["sw0"]
        mon = UtilizationSampler(sim, topo.switches[0].ports[port_idx], interval_ps=us(10))
        sim.run(until=us(300))
        assert mon.series.max() > 0.9
        assert all(v <= 1.0 for v in mon.series.values)

    def test_idle_gives_zero(self, sim):
        from helpers import make_dumbbell

        topo, env = make_dumbbell(sim)
        mon = UtilizationSampler(sim, topo.switches[0].ports[0], interval_ps=us(5))
        sim.run(until=us(50))
        assert mon.series.max() == 0.0


class TestPauseCount:
    def test_zero_without_congestion(self, sim):
        topo, qps = loaded_dumbbell(sim)
        sim.run(until=us(100))
        assert pause_frame_count(topo.switches) == 0

    def test_counts_accumulate_across_switches(self, sim):
        from helpers import make_dumbbell
        from repro.experiments.common import launch_flows
        from repro.traffic.generator import incast_flows
        from repro.units import KB, MB

        # Tiny PFC threshold + incast: pauses must fire.
        topo, env = make_dumbbell(sim, cc="dcqcn", pfc_xoff=20 * KB, n_senders=4)
        flows = incast_flows(
            [h.host_id for h in topo.hosts[:4]], topo.hosts[-1].host_id, 2 * MB
        )
        launch_flows(topo, flows, env)
        sim.run(until=us(300))
        assert pause_frame_count(topo.switches) > 0


class TestPfcFrameTotals:
    def test_ledger_balances_on_drained_run(self, sim):
        from helpers import make_dumbbell
        from repro.experiments.common import launch_flows
        from repro.metrics.monitors import pfc_frame_totals
        from repro.traffic.generator import incast_flows
        from repro.units import KB, us

        # PFC-heavy incast that runs to completion: once the fabric
        # drains, every PAUSE/RESUME frame sent was received exactly once
        # (hosts count XON now too — the asymmetric-accounting fix).
        topo, env = make_dumbbell(sim, cc="fncc", pfc_xoff=40 * KB, n_senders=4)
        flows = incast_flows(
            [h.host_id for h in topo.hosts[:4]], topo.hosts[-1].host_id, 400 * KB
        )
        launch_flows(topo, flows, env)
        sim.run(until=us(50_000))
        totals = pfc_frame_totals(list(topo.hosts) + list(topo.switches))
        assert totals["pause_sent"] > 0
        assert totals["resume_sent"] > 0
        assert totals["pause_sent"] == totals["pause_received"]
        assert totals["resume_sent"] == totals["resume_received"]
