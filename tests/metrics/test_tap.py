"""PacketTap capture semantics."""

import pytest

from repro.cc.base import CongestionControl
from repro.metrics.tap import PacketTap
from repro.net.host import Host
from repro.net.packet import ACK, DATA
from repro.net.port import connect
from repro.transport.flow import Flow
from repro.units import us


def wired_pair(sim):
    a = Host(sim, "a", host_id=0)
    b = Host(sim, "b", host_id=1)
    connect(sim, a, b, 100.0, 0)
    return a, b


def run_flow(sim, a, b, size=20_000, flow_id=0):
    flow = Flow(flow_id, 0, 1, size, start_ps=sim.now)
    b.register_receiver(flow)
    a.start_flow(flow, CongestionControl(), us(10))


class TestCapture:
    def test_captures_all_by_default(self, sim):
        a, b = wired_pair(sim)
        tap = PacketTap(b)
        run_flow(sim, a, b)
        sim.run()
        assert tap.count == b.receivers[0].data_packets

    def test_kind_filter(self, sim):
        a, b = wired_pair(sim)
        ack_tap = PacketTap(a, kind=ACK)
        data_tap = PacketTap(b, kind=DATA)
        run_flow(sim, a, b)
        sim.run()
        assert ack_tap.count == data_tap.count  # ack per packet
        assert all(p.kind == ACK for p in ack_tap.packets)

    def test_flow_filter(self, sim):
        a, b = wired_pair(sim)
        tap = PacketTap(b, kind=DATA, flow_id=1)
        run_flow(sim, a, b, flow_id=0)
        run_flow(sim, a, b, flow_id=1)
        sim.run()
        assert tap.count > 0
        assert all(p.flow_id == 1 for p in tap.packets)

    def test_predicate_filter(self, sim):
        a, b = wired_pair(sim)
        tap = PacketTap(b, kind=DATA, predicate=lambda p: p.last)
        run_flow(sim, a, b)
        sim.run()
        assert tap.count == 1

    def test_times_monotone_and_inter_arrivals(self, sim):
        a, b = wired_pair(sim)
        tap = PacketTap(b, kind=DATA)
        run_flow(sim, a, b, size=30_000)
        sim.run()
        assert tap.times == sorted(tap.times)
        assert all(g > 0 for g in tap.inter_arrival_ps())

    def test_max_packets_cap(self, sim):
        a, b = wired_pair(sim)
        tap = PacketTap(b, kind=DATA, max_packets=3)
        run_flow(sim, a, b, size=30_000)
        sim.run()
        assert tap.count == 3
        assert tap.dropped > 0

    def test_uninstall_stops_capture(self, sim):
        a, b = wired_pair(sim)
        tap = PacketTap(b)
        run_flow(sim, a, b, size=5000, flow_id=0)
        sim.run()
        n = tap.count
        tap.uninstall()
        run_flow(sim, a, b, size=5000, flow_id=1)
        sim.run()
        assert tap.count == n  # second flow invisible
        assert b.receivers[1].completed  # but still delivered

    def test_summary_mentions_kinds(self, sim):
        a, b = wired_pair(sim)
        tap = PacketTap(b)
        run_flow(sim, a, b, size=3000)
        sim.run()
        assert "DATA" in tap.summary()


class TestPoolInteraction:
    def test_two_taps_keep_pool_paused_until_last_uninstall(self, sim):
        from repro.net.host import Host

        a = Host(sim, "a", host_id=0, pool_packets=True)
        b = Host(sim, "b", host_id=1, pool_packets=True)
        from repro.net.port import connect

        connect(sim, a, b, 100.0, 0)
        t1 = PacketTap(b)
        t2 = PacketTap(b, kind=DATA)
        assert b.pkt_pool.enabled is False
        t1.uninstall()
        # t2 still capturing: recycling must stay off.
        assert b.pkt_pool.enabled is False
        t2.uninstall()
        assert b.pkt_pool.enabled is True

    def test_uninstall_does_not_enable_originally_disabled_pool(self, sim):
        a, b = wired_pair(sim)  # bare hosts: pooling off by default
        tap = PacketTap(b)
        tap.uninstall()
        assert b.pkt_pool.enabled is False
