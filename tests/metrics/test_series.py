"""TimeSeries container semantics."""

import pytest

from repro.metrics.series import TimeSeries


def filled():
    s = TimeSeries("t")
    for t, v in [(0, 1.0), (10, 5.0), (20, 3.0), (30, 0.5)]:
        s.append(t, v)
    return s


class TestBasics:
    def test_len_and_arrays(self):
        s = filled()
        assert len(s) == 4
        t, v = s.as_arrays()
        assert list(t) == [0, 10, 20, 30]
        assert v.dtype.kind == "f"

    def test_max_mean(self):
        s = filled()
        assert s.max() == 5.0
        assert s.mean() == pytest.approx((1 + 5 + 3 + 0.5) / 4)

    def test_empty_series(self):
        s = TimeSeries()
        assert s.max() == 0.0
        assert s.mean() == 0.0
        assert s.value_at(100) == 0.0


class TestWindows:
    def test_mean_after_skips_warmup(self):
        s = filled()
        assert s.mean_after(15) == pytest.approx((3 + 0.5) / 2)

    def test_mean_after_boundary_is_inclusive(self):
        s = filled()
        # bisect_left: a sample exactly at the cut is included.
        assert s.mean_after(20) == pytest.approx((3 + 0.5) / 2)
        assert s.mean_after(31) == 0.0

    def test_max_after(self):
        s = filled()
        assert s.max_after(15) == 3.0
        assert s.max_after(100) == 0.0

    def test_max_between(self):
        s = filled()
        assert s.max_between(5, 25) == 5.0
        assert s.max_between(10, 10) == 5.0  # both ends inclusive
        assert s.max_between(11, 19) == 0.0  # empty window
        assert s.max_between(25, 5) == 0.0  # inverted window

    def test_percentile(self):
        s = filled()  # values 1.0, 5.0, 3.0, 0.5
        assert s.percentile(0) == 0.5
        assert s.percentile(100) == 5.0
        assert s.percentile(50) == pytest.approx(2.0)  # median of the four
        # Windowed: only 3.0 and 0.5 remain after t=15.
        assert s.percentile(100, after_ps=15) == 3.0
        assert s.percentile(50, after_ps=15) == pytest.approx(1.75)
        assert s.percentile(99, after_ps=100) == 0.0  # empty window

    def test_cached_view_tracks_appends(self):
        s = filled()
        assert s.max_after(0) == 5.0  # builds the cache
        s.append(40, 9.0)
        assert s.max_after(0) == 9.0  # append invalidated it
        assert s.percentile(100) == 9.0

    def test_value_at_step_interpolation(self):
        s = filled()
        assert s.value_at(0) == 1.0
        assert s.value_at(15) == 5.0
        assert s.value_at(30) == 0.5
        assert s.value_at(999) == 0.5


class TestThresholdScans:
    def test_first_time_below(self):
        s = filled()
        assert s.first_time_below(1.0, after_ps=5) == 30
        assert s.first_time_below(0.1) == -1

    def test_first_time_above(self):
        s = filled()
        assert s.first_time_above(4.0) == 10
        assert s.first_time_above(4.0, after_ps=15) == -1
