"""FCT collection, binning, and the slowdown tables of Figs. 14/15."""

import pytest

from repro.metrics.fct import (
    SIZE_BINS_HADOOP,
    SIZE_BINS_WEBSEARCH,
    FctCollector,
    SlowdownTable,
)
from repro.transport.flow import Flow, FlowRecord
from repro.units import KB, MB, us


def record(size, slowdown, flow_id=0):
    f = Flow(flow_id, 0, 1, size)
    rec = FlowRecord(f, finish_ps=us(10 * slowdown))
    rec.ideal_fct_ps = us(10)
    return rec


class TestSlowdownTable:
    def test_binning_first_upper_bound_wins(self):
        t = SlowdownTable([10 * KB, 100 * KB, MB])
        t.add(5 * KB, 2.0)
        t.add(10 * KB, 3.0)  # boundary: belongs to the 10 KB bin
        t.add(50 * KB, 4.0)
        t.add(MB, 5.0)
        counts = t.row_counts()
        assert counts[10 * KB] == 2
        assert counts[100 * KB] == 1
        assert counts[MB] == 1

    def test_overflow_bucket(self):
        t = SlowdownTable([10 * KB])
        t.add(20 * KB, 9.0)
        assert t.row_counts()[10 * KB] == 0
        assert t.overflow == [9.0]

    def test_stats_per_bin(self):
        t = SlowdownTable([10 * KB])
        for s in (1.0, 2.0, 3.0, 4.0):
            t.add(KB, s)
        assert t.stat(10 * KB, "average") == pytest.approx(2.5)
        assert t.stat(10 * KB, "median") == pytest.approx(2.5)
        assert t.stat(10 * KB, "p95") == pytest.approx(3.85)
        assert t.stat(10 * KB, "p99") == pytest.approx(3.97)

    def test_empty_bin_returns_none(self):
        t = SlowdownTable([10 * KB])
        assert t.stat(10 * KB, "average") is None

    def test_unknown_column_rejected(self):
        t = SlowdownTable([10 * KB])
        t.add(KB, 1.0)
        with pytest.raises(ValueError):
            t.stat(10 * KB, "p50.5")

    def test_aggregate_size_band(self):
        t = SlowdownTable([10 * KB, 100 * KB, MB])
        t.add(KB, 10.0)     # <=10KB
        t.add(50 * KB, 2.0)  # <=100KB
        t.add(500 * KB, 4.0)  # <=1MB
        short = t.aggregate("average", max_size=100 * KB)
        assert short == pytest.approx(6.0)
        long = t.aggregate("average", min_size=100 * KB)
        assert long == pytest.approx(4.0)

    def test_aggregate_includes_overflow_when_unbounded(self):
        t = SlowdownTable([10 * KB])
        t.add(KB, 1.0)
        t.add(50 * MB, 9.0)  # overflow
        assert t.aggregate("average") == pytest.approx(5.0)

    def test_aggregate_empty_returns_none(self):
        t = SlowdownTable([10 * KB])
        assert t.aggregate("p95") is None

    def test_from_records(self):
        recs = [record(KB, 2.0), record(5 * MB, 3.0, flow_id=1)]
        t = SlowdownTable.from_records(recs, SIZE_BINS_WEBSEARCH)
        assert t.row_counts()[10 * KB] == 1

    def test_format_renders_all_bins(self):
        t = SlowdownTable([10 * KB, MB])
        t.add(KB, 2.0)
        text = t.format("demo")
        assert "demo" in text
        assert "10KB" in text and "1MB" in text

    def test_paper_bins_exact(self):
        assert SIZE_BINS_WEBSEARCH[0] == 10 * KB
        assert SIZE_BINS_WEBSEARCH[-1] == 30 * MB
        assert SIZE_BINS_HADOOP[0] == 75
        assert SIZE_BINS_HADOOP[-1] == MB
        assert len(SIZE_BINS_WEBSEARCH) == 11
        assert len(SIZE_BINS_HADOOP) == 13


class TestCollectorWiring:
    def test_collector_attaches_to_all_hosts(self, sim):
        from repro.topo.star import star

        topo = star(sim, 3)
        col = FctCollector(topo)
        for h in topo.hosts:
            assert h.fct_sink is not None
        assert col.completed() == 0

    def test_records_on_completion(self, sim):
        from repro.experiments.common import build_cc_env, launch_flows
        from repro.topo.star import star

        env = build_cc_env("fncc")
        topo = star(sim, 3, switch_config=env.switch_config)
        col = FctCollector(topo)
        launch_flows(topo, [Flow(0, 0, 2, 100_000)], env)
        sim.run(until=us(10_000))
        assert col.completed() == 1
        rec = col.records[0]
        assert rec.ideal_fct_ps > 0
        assert rec.slowdown >= 1.0
