"""Fixture-snippet suite for every fncc-lint rule (DESIGN.md §9).

One violating, one clean, and one suppressed case per rule, driven through
:func:`tools.lint.lint_source` with the compiled-in policy config and
synthetic repo paths — the same entry point the CLI uses, minus the
filesystem walk.
"""

import os
import sys
import textwrap

import pytest

# ``tools.lint`` is a top-level package (packaged for the ``fncc-lint``
# entry point); import it from the repo root rather than an installed
# script.  Done here, not in a conftest: a tests/lint/conftest.py would
# collide with benchmarks/conftest.py under pytest's prepend import mode
# (both would claim the bare module name ``conftest``).
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from tools.lint import RULES, lint_source
from tools.lint.config import DEFAULTS

#: A path inside the lint scope that is on no allow/owner/hot list.
NEUTRAL = "src/repro/experiments/fixture_mod.py"


def run(snippet, relpath=NEUTRAL, rules=None):
    return lint_source(textwrap.dedent(snippet), relpath, DEFAULTS, rules)


def rules_hit(snippet, relpath=NEUTRAL, rules=None):
    return sorted({f.rule for f in run(snippet, relpath, rules)})


# -- D101: ambient entropy ---------------------------------------------------

D101_BAD = """
    import random
    def jitter():
        return random.random()
"""


def test_d101_violation():
    findings = run(D101_BAD, rules=["D101"])
    assert [f.rule for f in findings] == ["D101"]
    assert "random.random" in findings[0].message


def test_d101_from_import_alias():
    assert rules_hit(
        """
        from random import shuffle
        def scramble(items):
            shuffle(items)
        """,
        rules=["D101"],
    ) == ["D101"]


def test_d101_unseeded_random_instance():
    assert rules_hit(
        """
        import random
        RNG = random.Random()
        """,
        rules=["D101"],
    ) == ["D101"]


def test_d101_id_ordering():
    assert rules_hit(
        """
        def order(flows):
            return sorted(flows, key=id)
        """,
        rules=["D101"],
    ) == ["D101"]


def test_d101_clean_seeded_stream():
    assert rules_hit(
        """
        import random
        def make_stream(seed):
            return random.Random(seed)
        """,
        rules=["D101"],
    ) == []


def test_d101_sanctioned_module_exempt():
    assert rules_hit(D101_BAD, relpath="src/repro/sim/rng.py", rules=["D101"]) == []


def test_d101_suppressed():
    assert rules_hit(
        """
        import random
        def jitter():
            # fncc-lint: allow[D101] wall-clock jitter for a non-sim demo script
            return random.random()
        """,
        rules=["D101"],
    ) == []


# -- D102: hash-ordered scheduling -------------------------------------------

D102_BAD = """
    def arm(sim, ports):
        for p in set(ports):
            sim.schedule(10, p.fire)
"""


def test_d102_violation():
    assert rules_hit(D102_BAD, rules=["D102"]) == ["D102"]


def test_d102_keys_view():
    assert rules_hit(
        """
        def arm(sim, by_name):
            for name in by_name.keys():
                sim.schedule(10, by_name[name].fire)
        """,
        rules=["D102"],
    ) == ["D102"]


def test_d102_clean_sorted():
    assert rules_hit(
        """
        def arm(sim, ports):
            for p in sorted(set(ports)):
                sim.schedule(10, p.fire)
        """,
        rules=["D102"],
    ) == []


def test_d102_clean_no_schedule_in_body():
    assert rules_hit(
        """
        def total(sizes):
            acc = 0
            for s in set(sizes):
                acc += s
            return acc
        """,
        rules=["D102"],
    ) == []


def test_d102_suppressed():
    assert rules_hit(
        """
        def arm(sim, ports):
            # fncc-lint: allow[D102] single-element set by construction; order is vacuous
            for p in set(ports):
                sim.schedule(10, p.fire)
        """,
        rules=["D102"],
    ) == []


# -- D103: float event keys --------------------------------------------------

D103_BAD = """
    def arm(sim, gap_ps, fn):
        sim.schedule(gap_ps / 2, fn)
"""


def test_d103_violation():
    assert rules_hit(D103_BAD, rules=["D103"]) == ["D103"]


def test_d103_float_literal():
    assert rules_hit(
        """
        def arm(sim, gap_ps, fn):
            sim.schedule_at(gap_ps * 1.5, fn)
        """,
        rules=["D103"],
    ) == ["D103"]


def test_d103_schedule_reuse_delay_arg():
    assert rules_hit(
        """
        def rearm(sim, ev, gap_ps):
            sim.schedule_reuse(ev, gap_ps / 4)
        """,
        rules=["D103"],
    ) == ["D103"]


def test_d103_clean_floor_div_and_round():
    assert rules_hit(
        """
        def arm(sim, gap_ps, fn):
            sim.schedule(gap_ps // 2, fn)
            sim.schedule(round(gap_ps / 2), fn)
        """,
        rules=["D103"],
    ) == []


def test_d103_clean_units_helper_call():
    # us(1.5) returns an int; the rule must not descend into nested calls.
    assert rules_hit(
        """
        from repro.units import us
        def arm(sim, fn):
            sim.schedule(us(1.5), fn)
        """,
        rules=["D103"],
    ) == []


def test_d103_suppressed():
    assert rules_hit(
        """
        def arm(sim, gap_ps, fn):
            # fncc-lint: allow[D103] gap_ps is a power-of-two int; / is exact here
            sim.schedule(gap_ps / 2, fn)
        """,
        rules=["D103"],
    ) == []


# -- D104: fault-module seed discipline ---------------------------------------

FAULTS_MOD = "src/repro/faults/fixture_mod.py"

D104_AMBIENT = """
    import random
    def flap_jitter():
        return random.randrange(100)
"""

D104_ADHOC = """
    import random
    def make_schedule(seed):
        rng = random.Random(seed)
        return [rng.random() for _ in range(4)]
"""


def test_d104_ambient_entropy_in_fault_module():
    findings = run(D104_AMBIENT, relpath=FAULTS_MOD, rules=["D104"])
    assert [f.rule for f in findings] == ["D104"]
    assert "seeds.stream" in findings[0].message


def test_d104_adhoc_seeded_rng_in_fault_module():
    # The D101 gap D104 closes: random.Random(seed) is *seeded* (D101-clean)
    # but still a private entropy root invisible to the run seed.
    findings = run(D104_ADHOC, relpath=FAULTS_MOD, rules=["D104"])
    assert [f.rule for f in findings] == ["D104"]
    assert "private RNG" in findings[0].message
    assert rules_hit(D104_ADHOC, relpath=FAULTS_MOD, rules=["D101"]) == []


def test_d104_numpy_rng_in_fault_module():
    assert rules_hit(
        """
        import numpy as np
        def draw():
            return np.random.default_rng(7)
        """,
        relpath=FAULTS_MOD,
        rules=["D104"],
    ) == ["D104"]


def test_d104_scoped_to_fault_modules():
    # The same snippets outside faults/ are D104-clean (D101 still owns the
    # ambient-entropy half there).
    assert rules_hit(D104_AMBIENT, rules=["D104"]) == []
    assert rules_hit(D104_ADHOC, rules=["D104"]) == []


def test_d104_clean_seed_factory_stream():
    assert rules_hit(
        """
        def expand(plan, seeds):
            rng = seeds.stream(f"faults.{plan.name}")
            return rng.randrange(10)
        """,
        relpath=FAULTS_MOD,
        rules=["D104"],
    ) == []


def test_d104_suppressed():
    assert rules_hit(
        """
        import random
        def demo():
            # fncc-lint: allow[D104] doc example, never armed against a sim
            return random.random()
        """,
        relpath=FAULTS_MOD,
        rules=["D104"],
    ) == []


def test_d104_shipping_fault_modules_clean():
    # The real faults/ package must satisfy its own rule (baseline empty).
    import glob

    for path in sorted(glob.glob(os.path.join(_REPO_ROOT, "src/repro/faults/*.py"))):
        rel = os.path.relpath(path, _REPO_ROOT).replace(os.sep, "/")
        with open(path, "r", encoding="utf-8") as fh:
            findings = lint_source(fh.read(), rel, DEFAULTS, ["D104"])
        assert findings == [], f"{rel}: {[str(f) for f in findings]}"


# -- P201/P202: spec picklability --------------------------------------------


def test_p201_lambda_fn():
    assert rules_hit(
        """
        from repro.exec.spec import RunSpec
        def sweep():
            return [RunSpec(lambda seed: seed, dict(x=1))]
        """,
        rules=["P201"],
    ) == ["P201"]


def test_p201_partial_fn():
    assert rules_hit(
        """
        import functools
        from repro.exec.spec import RunSpec
        def sweep(base):
            return [RunSpec(functools.partial(base, x=1))]
        """,
        rules=["P201"],
    ) == ["P201"]


def test_p201_clean_string_ref():
    assert rules_hit(
        """
        from repro.exec.spec import RunSpec
        def sweep():
            return [RunSpec("repro.experiments.fct_experiment:run_fct_summary")]
        """,
        rules=["P201"],
    ) == []


def test_p201_suppressed():
    assert rules_hit(
        """
        from repro.exec.spec import RunSpec
        def sweep():
            # fncc-lint: allow[P201] serial-only in-process sweep; spec never crosses a process boundary
            return [RunSpec(lambda seed: seed)]
        """,
        rules=["P201"],
    ) == []


def test_p202_lambda_in_kwargs():
    assert rules_hit(
        """
        from repro.exec.spec import RunSpec
        def sweep(fn):
            return [RunSpec(fn, dict(make=lambda: 3))]
        """,
        rules=["P202"],
    ) == ["P202"]


def test_p202_clean_plain_data():
    assert rules_hit(
        """
        from repro.exec.spec import RunSpec
        def sweep(fn):
            return [RunSpec(fn, dict(n_flows=64, cc="fncc"), seed=7)]
        """,
        rules=["P202"],
    ) == []


def test_p202_suppressed():
    assert rules_hit(
        """
        from repro.exec.spec import RunSpec
        def sweep(fn):
            # fncc-lint: allow[P202] serial-only in-process sweep; spec never crosses a process boundary
            return [RunSpec(fn, dict(make=lambda: 3))]
        """,
        rules=["P202"],
    ) == []


# -- H301: hot-path state ownership ------------------------------------------

H301_BAD = """
    def hack(sim):
        sim._heap = []
"""


def test_h301_violation():
    findings = run(H301_BAD, rules=["H301"])
    assert [f.rule for f in findings] == ["H301"]
    assert "_heap" in findings[0].message


def test_h301_event_alive_write():
    assert rules_hit(
        """
        def kill(ev):
            ev.alive = False
        """,
        rules=["H301"],
    ) == ["H301"]


def test_h301_owner_module_exempt():
    assert rules_hit(H301_BAD, relpath="src/repro/sim/engine.py", rules=["H301"]) == []


def test_h301_friend_module_exempt():
    # port.py inlines schedule_reuse (documented friend of the engine).
    assert rules_hit(
        """
        def deliver(sim, ev):
            sim._seq = seq = sim._seq + 1
            ev.alive = True
        """,
        relpath="src/repro/net/port.py",
        rules=["H301"],
    ) == []


def test_h301_self_write_is_own_state():
    assert rules_hit(
        """
        class Sweeper:
            def __init__(self):
                self._pool = []
                self.key = None
        """,
        rules=["H301"],
    ) == []


def test_h301_suppressed():
    assert rules_hit(
        """
        def kill(ev):
            # fncc-lint: allow[H301] inlined Event.cancel() on a handle this module owns
            ev.alive = False
        """,
        rules=["H301"],
    ) == []


# -- H302: __slots__ in hot modules ------------------------------------------

H302_BAD = """
    class Shim:
        def __init__(self):
            self.x = 1
"""


def test_h302_violation_in_hot_module():
    assert rules_hit(H302_BAD, relpath="src/repro/net/packet.py", rules=["H302"]) == [
        "H302"
    ]


def test_h302_clean_with_slots():
    assert rules_hit(
        """
        class Shim:
            __slots__ = ("x",)
            def __init__(self):
                self.x = 1
        """,
        relpath="src/repro/net/packet.py",
        rules=["H302"],
    ) == []


def test_h302_exception_exempt():
    assert rules_hit(
        """
        class PoolError(RuntimeError):
            pass
        """,
        relpath="src/repro/net/packet.py",
        rules=["H302"],
    ) == []


def test_h302_cold_module_exempt():
    assert rules_hit(H302_BAD, relpath=NEUTRAL, rules=["H302"]) == []


def test_h302_suppressed():
    assert rules_hit(
        """
        # fncc-lint: allow[H302] debug-only shim, never instantiated per frame
        class Shim:
            def __init__(self):
                self.x = 1
        """,
        relpath="src/repro/net/packet.py",
        rules=["H302"],
    ) == []


# -- O401: pull-only collectors ----------------------------------------------

O401_BAD = """
    def export(registry):
        registry.counter("exports").inc()
        return registry.snapshot()
"""


def test_o401_violation():
    assert rules_hit(
        O401_BAD, relpath="src/repro/obs/export.py", rules=["O401"]
    ) == ["O401"]


def test_o401_clean_pull_only():
    assert rules_hit(
        """
        def export(registry):
            return registry.snapshot()
        """,
        relpath="src/repro/obs/export.py",
        rules=["O401"],
    ) == []


def test_o401_instrumented_code_exempt():
    # pushes from non-collector modules are the normal pattern
    assert rules_hit(O401_BAD, relpath=NEUTRAL, rules=["O401"]) == []


def test_o401_suppressed():
    assert rules_hit(
        """
        def export(registry):
            # fncc-lint: allow[O401] meta-metric about the exporter itself, read by no collector
            registry.counter("exports").inc()
            return registry.snapshot()
        """,
        relpath="src/repro/obs/export.py",
        rules=["O401"],
    ) == []


# -- O402: _train_ok protocol ------------------------------------------------

O402_BAD = """
    def hook(sw):
        sw._train_ok = False
"""


def test_o402_violation():
    assert rules_hit(O402_BAD, rules=["O402"]) == ["O402"]


def test_o402_protocol_module_exempt():
    assert rules_hit(O402_BAD, relpath="src/repro/metrics/tap.py", rules=["O402"]) == []
    assert rules_hit(O402_BAD, relpath="src/repro/net/switch.py", rules=["O402"]) == []


def test_o402_suppressed():
    assert rules_hit(
        """
        def hook(sw):
            # fncc-lint: allow[O402] follows the PacketTap protocol: recompute on detach
            sw._train_ok = False
        """,
        rules=["O402"],
    ) == []


# -- suppression machinery (LINT000) -----------------------------------------


def test_unjustified_suppression_is_a_finding_and_does_not_suppress():
    findings = run(
        """
        import random
        def jitter():
            # fncc-lint: allow[D101]
            return random.random()
        """,
        rules=["D101"],
    )
    assert sorted(f.rule for f in findings) == ["D101", "LINT000"]


def test_suppression_wrong_rule_does_not_suppress():
    assert rules_hit(
        """
        import random
        def jitter():
            # fncc-lint: allow[H301] not the rule that fires here
            return random.random()
        """,
        rules=["D101"],
    ) == ["D101"]


def test_multi_rule_suppression():
    assert rules_hit(
        """
        import random
        def jitter():
            # fncc-lint: allow[D101,H301] demo helper outside any sim run
            return random.random()
        """,
        rules=["D101"],
    ) == []


# -- S501: shard isolation ---------------------------------------------------

SHARD_PATH = "src/repro/shard/coordinator_fixture.py"


def test_s501_private_reach_through_flagged():
    assert rules_hit(
        """
        def steal(engine):
            return engine.sim._heap[0]
        """,
        relpath=SHARD_PATH,
        rules=["S501"],
    ) == ["S501"]


def test_s501_own_private_state_clean():
    assert rules_hit(
        """
        class Coordinator:
            def __init__(self):
                self._pending = []
            def push(self, msg):
                self._pending.append(msg)
        """,
        relpath=SHARD_PATH,
        rules=["S501"],
    ) == []


def test_s501_public_surface_clean():
    assert rules_hit(
        """
        def drive(engine, horizon):
            return engine.advance(horizon, [])
        """,
        relpath=SHARD_PATH,
        rules=["S501"],
    ) == []


def test_s501_boundary_adapter_exempt():
    assert rules_hit(
        """
        def export(port):
            return list(port._inflight)
        """,
        relpath="src/repro/shard/boundary.py",
        rules=["S501"],
    ) == []


def test_s501_outside_shard_package_not_in_scope():
    assert rules_hit(
        """
        def peek(port):
            return port._inflight
        """,
        relpath=NEUTRAL,
        rules=["S501"],
    ) == []


def test_s501_suppressible_with_justification():
    assert rules_hit(
        """
        def peek(engine):
            # fncc-lint: allow[S501] read-only debug dump, never in the run loop
            return engine.sim._heap
        """,
        relpath=SHARD_PATH,
        rules=["S501"],
    ) == []


def test_every_registered_rule_has_a_design_ref():
    assert set(RULES) >= {
        "D101", "D102", "D103", "P201", "P202", "H301", "H302", "O401", "O402",
        "S501",
    }
    for name, (_, summary, ref) in RULES.items():
        assert summary and ref.startswith("DESIGN.md"), name


# -- repo gate: the tree itself lints clean ----------------------------------


def test_repo_lints_clean_with_empty_dh_baseline():
    """The acceptance bar: zero unbaselined findings and no D/H debt."""
    import os

    from tools.lint.baseline import load_baseline
    from tools.lint.config import load_config
    from tools.lint.core import lint_paths

    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    cfg = load_config(root)
    findings = lint_paths(root, cfg["paths"], cfg)
    baseline = load_baseline(os.path.join(root, cfg["baseline"]))
    assert findings == [], [f.format() for f in findings]
    for key in baseline:
        assert not key.startswith(("D", "H")), f"D/H debt must be fixed, not baselined: {key}"
