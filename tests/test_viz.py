"""ASCII visualization helpers."""

from repro.metrics.series import TimeSeries
from repro.viz import ascii_plot, compare_series, sparkline


def series(values, dt=1_000_000):
    s = TimeSeries("t")
    for i, v in enumerate(values):
        s.append(i * dt, float(v))
    return s


class TestSparkline:
    def test_length_capped_at_width(self):
        assert len(sparkline(range(1000), width=40)) == 40

    def test_short_input_kept(self):
        assert len(sparkline([1, 2, 3], width=40)) == 3

    def test_flat_series_lowest_glyph(self):
        out = sparkline([5, 5, 5])
        assert out == out[0] * 3

    def test_monotone_ramp_monotone_glyphs(self):
        out = sparkline(range(8), width=8)
        assert list(out) == sorted(out)

    def test_empty(self):
        assert sparkline([]) == ""


class TestAsciiPlot:
    def test_contains_title_and_axes(self):
        out = ascii_plot(series([0, 5, 2, 8, 1]), title="queue")
        assert "queue" in out
        assert "time (us)" in out
        assert "*" in out

    def test_peak_row_is_top(self):
        out = ascii_plot(series([0, 0, 10, 0, 0]), height=5, width=20)
        lines = [l for l in out.splitlines() if "|" in l]
        assert "*" in lines[0]  # max lands on the top row

    def test_empty_series(self):
        assert "(empty)" in ascii_plot(TimeSeries(), title="x")

    def test_y_scale_applied(self):
        out = ascii_plot(series([1000.0]), y_scale=0.001)
        assert "1.0" in out


class TestCompareSeries:
    def test_one_line_per_series(self):
        out = compare_series({"a": series([1, 2]), "b": series([3, 4])})
        assert len(out.splitlines()) == 2
        assert "peak=4.0" in out

    def test_shared_scale(self):
        # The small series must render low glyphs against the big one.
        out = compare_series({"small": series([1, 1]), "big": series([100, 100])})
        small_line, big_line = out.splitlines()
        assert "▁" in small_line
        assert "█" in big_line

    def test_empty_dict(self):
        assert compare_series({}) == ""
