"""FaultPlan: plain-data schedules — validation, fingerprints, pickling."""

import pickle

import pytest

from repro.faults import FaultPlan
from repro.units import us


def build_reference_plan():
    return (
        FaultPlan("ref")
        .link_down("a", "b", at_ps=us(10))
        .link_up("a", "b", at_ps=us(20))
        .link_flap("a", "c", start_ps=us(5), flaps=3, down_ps=us(2), up_ps=us(2))
        .switch_fail("s1", at_ps=us(30))
        .gray_loss("a", "b", start_ps=us(1), end_ps=us(9), prob=0.05)
        .pfc_storm(
            "s1", toward="h0", prio=0, start_ps=us(2), duration_ps=us(8),
            interval_ps=us(1),
        )
    )


def test_builders_chain_and_record_specs():
    plan = build_reference_plan()
    assert len(plan) == 6
    assert bool(plan)
    kinds = [s["kind"] for s in plan.specs]
    assert kinds == [
        "link_down", "link_up", "link_flap", "switch_fail", "gray_loss",
        "pfc_storm",
    ]


def test_noop_is_falsy_and_empty():
    plan = FaultPlan.noop()
    assert len(plan) == 0
    assert not plan


def test_validation_rejects_bad_fields():
    with pytest.raises(ValueError):
        FaultPlan("p").link_down("a", "b", at_ps=-1)
    with pytest.raises(ValueError):
        FaultPlan("p").gray_loss("a", "b", start_ps=0, end_ps=us(1), prob=1.5)
    with pytest.raises(ValueError):
        FaultPlan("p").link_down("", "b", at_ps=0)


def test_fingerprint_is_deterministic_and_content_addressed():
    a = build_reference_plan()
    b = build_reference_plan()
    assert a.fingerprint() == b.fingerprint()
    assert a == b
    c = build_reference_plan().link_down("x", "y", at_ps=us(99))
    assert a.fingerprint() != c.fingerprint()
    assert a != c


def test_pickle_round_trip_preserves_identity():
    # RunSpec workers receive plans by pickle; the round trip must be exact
    # or pooled cells would diverge from serial ones.
    plan = build_reference_plan()
    clone = pickle.loads(pickle.dumps(plan))
    assert clone == plan
    assert clone.fingerprint() == plan.fingerprint()
    assert clone.name == plan.name
