"""Receiver OOO buffer under injected gray loss, pool-sanitized.

Satellite of the fault-injection PR: gray loss punches holes in the data
stream, so the reorder-tolerant receiver buffers past-the-hole frames,
NACK-flagged duplicate ACKs arm the sender's fast rewind, and the flow
still completes.  The whole run executes under the packet-pool
sanitizer at stride=1 (every lifecycle tracked, released frames
poisoned), so any OOO-buffer mishandling — delivering a released frame,
double-releasing a purge victim, leaking buffered frames at completion —
raises :class:`UseAfterReleaseError` or trips the occupancy asserts.
"""

from repro.experiments.common import build_cc_env, launch_flows
from repro.faults import FaultInjector, FaultPlan
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.topo.dumbbell import dumbbell
from repro.transport.flow import Flow
from repro.transport.sender import TransportConfig
from repro.units import KB, us


def _run_grayloss(monkeypatch, seed=7, prob=0.02, size=500 * KB):
    monkeypatch.setenv("REPRO_POOL_STRIDE", "1")
    sim = Simulator(sanitize="pool")
    seeds = SeedSequenceFactory(seed)
    env = build_cc_env("fncc")
    tc = TransportConfig(
        retx_timeout_ps=us(200),
        retx_backoff_cap=3,
        retx_max_timeouts=10,
        reorder_window_bytes=256 * KB,
        dupack_rewind=3,
    )
    topo = dumbbell(
        sim, n_senders=1, n_switches=2, seeds=seeds, transport_config=tc,
        switch_config=env.switch_config, cnp_enabled=env.cnp_enabled,
    )
    plan = FaultPlan("gray").gray_loss(
        "sw0", "sw1", start_ps=us(2), end_ps=us(5000), prob=prob,
    )
    injector = FaultInjector(plan).arm(sim, topo, seeds=seeds)
    flow = Flow(0, 0, topo.hosts[-1].host_id, size)
    qps = launch_flows(topo, [flow], env)
    sim.run(until=us(20_000))
    return topo, qps[0], injector


def test_grayloss_ooo_recovery_no_pool_leak(monkeypatch):
    topo, qp, injector = _run_grayloss(monkeypatch)
    rqp = topo.hosts[-1].receivers[0]
    # The fault bit and the loss-recovery machinery engaged.
    assert injector.counters["drops_gray"] > 0
    assert rqp.ooo_buffered > 0
    assert rqp.dup_acks_sent > 0
    # Recovery succeeded: the flow completed, not failed.
    assert rqp.completed
    assert not qp.failed
    # No pool leak: every buffered frame was delivered or purged-and-
    # released; the buffer and its occupancy gauge drained to zero.
    assert rqp._ooo == {}
    assert rqp._ooo_bytes == 0
    assert rqp.ooo_delivered + rqp.ooo_duplicates >= rqp.ooo_buffered


def test_grayloss_fast_rewind_fires(monkeypatch):
    # Heavier loss makes stale-retransmission dup ACKs (NACK-flagged)
    # inevitable, so the dup-ACK rewind path — not just RTO — recovers.
    topo, qp, injector = _run_grayloss(monkeypatch, seed=11, prob=0.05)
    rqp = topo.hosts[-1].receivers[0]
    assert rqp.completed
    assert qp.fast_rewinds > 0
    assert rqp._ooo == {} and rqp._ooo_bytes == 0
