"""FaultInjector: zero-perturbation, reproducibility, recovery (DESIGN.md §10).

The acceptance criteria pinned here:

* ``faults=None`` vs an armed no-op plan → byte-identical FCT fingerprints
  AND byte-identical PortStats (the wire-level witness);
* an identical (plan, seed) pair reproduces identical fingerprints across
  runs and across ``--jobs`` pool workers;
* a hard link failure leaves zero hung flows: every flow completes or
  reaches the flow-failed terminal state;
* switch fail-stop partitions its traffic into flow-failed, never a hang.
"""

import pytest

from repro.experiments.common import (
    build_cc_env,
    launch_flows,
    portstats_fingerprint,
)
from repro.experiments.faultmatrix import (
    QUICK_SLICE,
    run_fault_cell,
    run_fault_cell_summary,
    run_faultmatrix,
)
from repro.experiments.fct_experiment import run_fct_experiment
from repro.faults import FaultInjector, FaultPlan
from repro.sim.rng import SeedSequenceFactory
from repro.topo.dumbbell import dumbbell
from repro.transport.flow import Flow
from repro.transport.sender import TransportConfig
from repro.units import KB, us

CELL = dict(cc="fncc", n_flows=40, max_horizon_ms=10.0, seed=3)


def test_noop_plan_is_zero_perturbation():
    off = run_fct_experiment(faults=None, **CELL)
    armed = run_fct_experiment(faults=FaultPlan.noop(), **CELL)
    assert off.fct_fingerprint() == armed.fct_fingerprint()
    assert portstats_fingerprint(off.topo) == portstats_fingerprint(armed.topo)


def test_same_plan_same_seed_reproduces():
    kw = dict(profile="flap", lb="ecmp", cc="fncc", seed=5)
    a = run_fault_cell_summary(**kw)
    b = run_fault_cell_summary(**kw)
    assert a.fct_fingerprint() == b.fct_fingerprint()
    assert a.fault_counters == b.fault_counters
    assert a.events_dispatched == b.events_dispatched


def test_fingerprints_identical_across_jobs():
    serial = run_faultmatrix(seed=2, jobs=1, **QUICK_SLICE)
    pooled = run_faultmatrix(seed=2, jobs=2, **QUICK_SLICE)
    assert set(serial) == set(pooled)
    for key, cell in serial.items():
        assert cell.fct_fingerprint() == pooled[key].fct_fingerprint(), key
        assert cell.fault_counters == pooled[key].fault_counters, key


def test_link_down_cell_zero_hung_flows():
    cell = run_fault_cell(profile="linkdown", lb="ecmp", cc="fncc", seed=1)
    assert cell.hung == 0
    # The fault actually fired and bit: some flows degraded to flow-failed.
    assert cell.failed > 0
    assert cell.completed + cell.failed == cell.n_flows
    assert cell.fault_counters["events"] > 0
    assert cell.fault_counters["drops_link_down"] > 0


def test_adaptive_lb_recovers_more_than_ecmp():
    ecmp = run_fault_cell(profile="linkdown", lb="ecmp", cc="fncc", seed=1)
    flowlet = run_fault_cell(profile="linkdown", lb="flowlet", cc="fncc", seed=1)
    assert flowlet.hung == 0
    # Flowlet reroutes around the dead uplink at the agg hop; static ECMP
    # hashes cannot, so adaptive LB completes at least as many flows.
    assert flowlet.completed >= ecmp.completed


def _dumbbell_flow(sim, plan=None, retx=True, size=200 * KB):
    seeds = SeedSequenceFactory(9)
    env = build_cc_env("fncc")
    tc = TransportConfig(
        retx_timeout_ps=us(150) if retx else 0,
        retx_backoff_cap=3,
        retx_max_timeouts=5,
    )
    topo = dumbbell(
        sim, n_senders=1, n_switches=3, seeds=seeds, transport_config=tc,
        switch_config=env.switch_config, cnp_enabled=env.cnp_enabled,
    )
    injector = None
    if plan is not None:
        injector = FaultInjector(plan).arm(sim, topo, seeds=seeds)
    flow = Flow(0, 0, topo.hosts[-1].host_id, size)
    qps = launch_flows(topo, [flow], env)
    return topo, qps[0], injector


def test_switch_fail_degrades_to_flow_failed(sim):
    plan = FaultPlan("kill-sw1").switch_fail("sw1", at_ps=us(3))
    topo, qp, injector = _dumbbell_flow(sim, plan)
    sim.run(until=us(5000))
    assert qp.failed
    assert qp.finished
    assert injector.counters["drops_switch_fail"] > 0
    # The receiver never saw the tail: no completion record.
    assert not topo.hosts[-1].receivers[0].completed


def test_link_down_then_up_heals_single_path(sim):
    # Down for 40 us mid-transfer on the only path: the sender must ride
    # RTO backoff through the outage and still finish after link_up.
    plan = (
        FaultPlan("blip")
        .link_down("sw0", "sw1", at_ps=us(5))
        .link_up("sw0", "sw1", at_ps=us(45))
    )
    topo, qp, injector = _dumbbell_flow(sim, plan)
    sim.run(until=us(5000))
    assert not qp.failed
    assert topo.hosts[-1].receivers[0].completed
    assert injector.counters["drops_link_down"] > 0


def test_injector_rejects_unknown_node(sim):
    plan = FaultPlan("typo").link_down("sw0", "nonexistent", at_ps=0)
    seeds = SeedSequenceFactory(1)
    topo = dumbbell(sim, n_senders=1, n_switches=2, seeds=seeds)
    with pytest.raises((KeyError, ValueError)):
        FaultInjector(plan).arm(sim, topo, seeds=seeds)
