"""PfcWatchdog: stuck-XOFF detection, storm isolation, restoration.

Uses the storm-isolation scenario from :mod:`repro.net.pfc_analysis`: a
wedged host NIC sprays PAUSE refreshes at its ToR (the SONiC pfc_wd
motivating case).  PAUSE latches until RESUME in this simulator, so an
un-watchdogged storm is a *permanent* stall — the innocent flow sharing
the wedged host's NIC never completes and the victim flow only escapes
via the transport RTO budget (flow-failed).  With the watchdog armed the
storm is detected within ``detect_ps + poll_ps``, absorbed, and the
innocent flow finishes at its fault-free FCT scale.
"""

import pytest

from repro.net.pfc_analysis import run_storm_isolation
from repro.net.switch import PfcWatchdogConfig, arm_watchdog
from repro.sim.rng import SeedSequenceFactory
from repro.topo.dumbbell import dumbbell
from repro.units import us


def test_unwatched_storm_victimizes_innocent_flow():
    r = run_storm_isolation(watchdog=False)
    # Innocent flow shares the wedged NIC's ToR: PFC backpressure starves
    # it forever (no RESUME ever arrives).
    assert r.innocent_fct_ps is None
    # The storm victim degrades gracefully: flow-failed, not hung.
    assert r.victim_failed
    assert r.wd_state is None


def test_watchdog_detects_and_isolates_storm():
    r = run_storm_isolation(watchdog=True, detect_us=30.0, restore_us=60.0)
    wd = r.wd_state
    assert wd["storms_detected"] >= 1
    # Detection window: the first storm must latch within detect + poll of
    # storm onset; by end-of-run the stuck queue is long past that bound,
    # so absorbed PAUSE refreshes and dropped frames prove isolation ran.
    assert wd["pauses_ignored"] > 0
    assert wd["pkts_dropped"] > 0
    # Isolation payoff: the innocent flow completes.
    assert r.innocent_fct_ps is not None
    # The victim still cannot reach the wedged host: graceful degradation.
    assert r.victim_failed


def test_watchdog_restores_after_storm_ends():
    # Short storm (200 us) inside a long run: refreshes stop, and after
    # restore_ps of silence the watchdog returns the queue to normal PFC.
    r = run_storm_isolation(
        watchdog=True,
        detect_us=30.0,
        restore_us=60.0,
        storm_duration_us=200.0,
        duration_us=6000.0,
    )
    wd = r.wd_state
    assert wd["storms_detected"] >= 1
    assert wd["storms_restored"] >= 1
    assert wd["active"] == []


def test_watchdog_run_is_deterministic():
    a = run_storm_isolation(watchdog=True, seed=4)
    b = run_storm_isolation(watchdog=True, seed=4)
    assert a.innocent_fct_ps == b.innocent_fct_ps
    assert a.wd_state == b.wd_state
    assert a.upstream_pauses == b.upstream_pauses


def test_double_arm_rejected(sim):
    topo = dumbbell(sim, n_senders=1, n_switches=1, seeds=SeedSequenceFactory(1))
    sw = topo.switches[0]
    arm_watchdog(sw, PfcWatchdogConfig(detect_ps=us(10)))
    with pytest.raises(RuntimeError):
        arm_watchdog(sw, PfcWatchdogConfig(detect_ps=us(10)))


def test_config_validation():
    with pytest.raises(ValueError):
        PfcWatchdogConfig(detect_ps=0)
    with pytest.raises(ValueError):
        PfcWatchdogConfig(action="quarantine")
