"""Load-balancing strategies: interface wiring, per-strategy behavior,
bounded per-run state, and flowlet/epoch determinism."""

import pytest

from repro.lb import (
    ConWeaveLiteLB,
    EcmpLB,
    FlowletLB,
    LbConfig,
    SprayLB,
    STRATEGIES,
    install_lb,
)
from repro.net.packet import ACK, DATA, Packet
from repro.routing.ecmp import install_ecmp
from repro.sim.engine import Simulator
from repro.topo.fattree import fattree
from repro.topo.jellyfish import jellyfish
from repro.units import us

from tests.routing.test_routing import trace_path


def fresh_fattree(sim, lb, **kw):
    return fattree(sim, k=4, lb=LbConfig(lb, **kw) if isinstance(lb, str) else lb)


def data_pkt(src, dst, flow_id, seq=0):
    return Packet(DATA, flow_id=flow_id, src=src, dst=dst, seq=seq, size=1048, payload=1000)


class TestInstall:
    def test_registry_has_all_four(self):
        assert set(STRATEGIES) == {"ecmp", "spray", "flowlet", "conweave"}

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            LbConfig("valiant")

    def test_one_instance_per_switch(self, sim):
        topo = fresh_fattree(sim, "spray")
        lbs = [sw.lb for sw in topo.switches]
        assert all(isinstance(lb, SprayLB) for lb in lbs)
        assert len(set(map(id, lbs))) == len(lbs)  # no shared state

    def test_install_ecmp_back_compat(self, sim):
        topo = fattree(sim, k=4)
        assert isinstance(topo.switches[0].lb, EcmpLB)
        assert topo.lb_config.strategy == "ecmp"
        assert topo.routing_tables is not None

    def test_per_run_ownership(self):
        """A fresh topology must never inherit a previous run's caches."""
        sim1 = Simulator()
        topo1 = fattree(sim1, k=4)
        trace_path(topo1, 0, 8, flow_id=3)
        assert any(sw.lb.hash_cache for sw in topo1.switches)
        sim2 = Simulator()
        topo2 = fattree(sim2, k=4)
        assert all(not sw.lb.hash_cache for sw in topo2.switches)

    def test_reorder_window_forced_on(self, sim):
        topo = fresh_fattree(sim, "spray")
        assert topo.transport_config.reorder_window_bytes > 0

    def test_ecmp_leaves_reorder_window_off(self, sim):
        topo = fattree(sim, k=4)
        assert topo.transport_config.reorder_window_bytes == 0


class TestEcmpBounded:
    def test_hash_cache_bounded(self, sim):
        topo = fattree(sim, k=4, lb=LbConfig("ecmp", max_cache_entries=32))
        tor = topo.node("tor_0_0")
        # More distinct flows than the cap: the cache must stay bounded.
        for fid in range(400):
            pkt = data_pkt(0, 8, fid)
            tor.router(tor, pkt)
        assert len(tor.lb.hash_cache) <= 32

    def test_bounded_cache_keeps_per_flow_stability(self, sim):
        topo = fattree(sim, k=4, lb=LbConfig("ecmp", max_cache_entries=8))
        a, b = 0, 8
        first = trace_path(topo, a, b, flow_id=5)
        for fid in range(100):  # churn the cache far past its cap
            trace_path(topo, a, b, flow_id=fid)
        assert trace_path(topo, a, b, flow_id=5) == first


class TestSpray:
    def test_round_robin_cycles_all_ports(self, sim):
        topo = fresh_fattree(sim, "spray")
        tor = topo.node("tor_0_0")
        remote = topo.node("h_2_0_0").host_id
        picks = {tor.router(tor, data_pkt(0, remote, 1)) for _ in range(8)}
        assert len(picks) == 2  # both uplinks used

    def test_acks_not_sprayed(self, sim):
        topo = fresh_fattree(sim, "spray")
        tor = topo.node("tor_0_0")
        remote = topo.node("h_2_0_0").host_id
        ack = Packet(ACK, flow_id=1, src=remote, dst=0, size=64)
        picks = {tor.router(tor, ack) for _ in range(8)}
        assert len(picks) == 1  # stable flow-hash path

    def test_random_mode_deterministic_per_seed(self):
        paths = []
        for _ in range(2):
            sim = Simulator()
            topo = fattree(sim, k=4, lb=LbConfig("spray", mode="random"))
            tor = topo.node("tor_0_0")
            remote = topo.node("h_2_0_0").host_id
            paths.append([tor.router(tor, data_pkt(0, remote, 1)) for _ in range(32)])
        assert paths[0] == paths[1]

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            SprayLB(mode="zigzag")


class TestFlowlet:
    def test_same_flowlet_same_port(self, sim):
        topo = fresh_fattree(sim, "flowlet")
        tor = topo.node("tor_0_0")
        remote = topo.node("h_2_0_0").host_id
        picks = {tor.router(tor, data_pkt(0, remote, 1)) for _ in range(16)}
        assert len(picks) == 1  # no idle gap: one flowlet, one port

    def test_gap_opens_new_flowlet(self, sim):
        topo = fattree(sim, k=4, lb=LbConfig("flowlet", gap_ps=us(2)))
        tor = topo.node("tor_0_0")
        remote = topo.node("h_2_0_0").host_id
        tor.router(tor, data_pkt(0, remote, 1))
        starts_before = tor.lb.flowlet_starts
        sim.schedule(us(10), lambda _: None)
        sim.run()  # advance the clock past the gap
        tor.router(tor, data_pkt(0, remote, 1))
        assert tor.lb.flowlet_starts == starts_before + 1

    def test_boundary_determinism_fixed_seed(self):
        """Same seed, same arrival schedule -> identical flowlet port
        sequence and boundary count."""

        def run_once():
            sim = Simulator()
            topo = fattree(sim, k=4, lb=LbConfig("flowlet", gap_ps=us(2)))
            tor = topo.node("tor_0_0")
            remote = topo.node("h_2_0_0").host_id
            picks = []

            def hit(t_us):
                sim.schedule(
                    us(t_us),
                    lambda _: picks.append(tor.router(tor, data_pkt(0, remote, 1))),
                )

            for t in (0, 1, 5, 6, 14, 30, 31):
                hit(t)
            sim.run()
            return picks, tor.lb.flowlet_starts

        assert run_once() == run_once()

    def test_conga_mode_prefers_uncongested_port(self, sim):
        topo = fattree(sim, k=4, lb=LbConfig("flowlet", gap_ps=us(1)))
        tor = topo.node("tor_0_0")
        remote = topo.node("h_2_0_0").host_id
        first = tor.router(tor, data_pkt(0, remote, 1))
        # Load the chosen uplink (paused so the backlog stands still), then
        # open a flowlet boundary: the next flowlet must escape to the
        # other uplink.
        tor.ports[first].pause(0)
        for i in range(20):
            tor.ports[first].enqueue(data_pkt(0, remote, 99, seq=i * 1000))
        sim.schedule(us(5), lambda _: None)
        sim.run()
        second = tor.router(tor, data_pkt(0, remote, 1))
        assert second != first

    def test_table_bounded(self, sim):
        topo = fattree(sim, k=4, lb=LbConfig("flowlet", max_cache_entries=16))
        tor = topo.node("tor_0_0")
        remote = topo.node("h_2_0_0").host_id
        for fid in range(200):
            tor.router(tor, data_pkt(0, remote, fid))
        assert len(tor.lb.flowlets) <= 16


class TestConWeaveLite:
    def build(self, sim, **kw):
        return fattree(sim, k=4, lb=LbConfig("conweave", **kw))

    def test_tor_stamps_epoch_tag(self, sim):
        topo = self.build(sim)
        tor = topo.node("tor_0_0")
        remote = topo.node("h_2_0_0").host_id
        pkt = data_pkt(0, remote, 1)
        pkt.hops = 1  # as Switch.receive would set at the first switch
        tor.router(tor, pkt)
        assert pkt.lb_tag == 0

    def test_downstream_obeys_tag(self, sim):
        topo = self.build(sim)
        agg = topo.node("agg_0_0")
        remote = topo.node("h_2_0_0").host_id
        by_tag = {}
        for tag in range(8):
            pkt = data_pkt(0, remote, 1)
            pkt.hops = 2  # downstream hop
            pkt.lb_tag = tag
            by_tag[tag] = agg.router(agg, pkt)
        assert len(set(by_tag.values())) == 2  # both cores reachable
        # Same tag must always map to the same port (path pinning).
        for tag, port in by_tag.items():
            pkt = data_pkt(0, remote, 7777)
            pkt.hops = 2
            pkt.lb_tag = tag
            # Different flow id -> different hash; same flow id, same tag:
            pkt2 = data_pkt(0, remote, 1)
            pkt2.hops = 2
            pkt2.lb_tag = tag
            assert agg.router(agg, pkt2) == port

    def test_reroute_marks_tail_and_bumps_epoch(self, sim):
        topo = self.build(
            sim, probe_interval_ps=us(1), min_epoch_gap_ps=us(1), threshold_ps=0
        )
        tor = topo.node("tor_0_0")
        remote = topo.node("h_2_0_0").host_id
        p0 = data_pkt(0, remote, 1)
        p0.hops = 1
        first_port = tor.router(tor, p0)
        # Congest the current uplink (paused: standing backlog) so the
        # probe sees an asymmetry.
        tor.ports[first_port].pause(0)
        for i in range(40):
            tor.ports[first_port].enqueue(data_pkt(0, remote, 99, seq=i * 1000))
        sim.schedule(us(3), lambda _: None)
        sim.run()
        p1 = data_pkt(0, remote, 1, seq=1000)
        p1.hops = 1
        tail_port = tor.router(tor, p1)
        assert p1.lb_tail is True  # old epoch's tail rides the old path
        assert tail_port == first_port
        assert tor.lb.reroutes == 1
        p2 = data_pkt(0, remote, 1, seq=2000)
        p2.hops = 1
        new_port = tor.router(tor, p2)
        assert p2.lb_tag > p0.lb_tag
        assert p2.lb_tail is False
        assert new_port != first_port

    def test_epoch_hysteresis(self, sim):
        topo = self.build(
            sim, probe_interval_ps=us(1), min_epoch_gap_ps=us(1000), threshold_ps=0
        )
        tor = topo.node("tor_0_0")
        remote = topo.node("h_2_0_0").host_id
        p = data_pkt(0, remote, 1)
        p.hops = 1
        port = tor.router(tor, p)
        tor.ports[port].pause(0)
        for i in range(40):
            tor.ports[port].enqueue(data_pkt(0, remote, 99, seq=i * 1000))
        sim.schedule(us(3), lambda _: None)
        sim.run()
        p1 = data_pkt(0, remote, 1, seq=1000)
        p1.hops = 1
        tor.router(tor, p1)
        assert tor.lb.reroutes == 0  # epoch too young to reroute

    def test_flow_table_bounded(self, sim):
        topo = self.build(sim, max_cache_entries=16)
        tor = topo.node("tor_0_0")
        remote = topo.node("h_2_0_0").host_id
        for fid in range(200):
            pkt = data_pkt(0, remote, fid)
            pkt.hops = 1
            tor.router(tor, pkt)
        assert len(tor.lb.flows) <= 16


class TestPathDiversity:
    """Multi-path invariants: the fabric actually offers the choices the
    strategies are supposed to exploit."""

    def test_fattree_diversity_counts(self, sim):
        topo = fattree(sim, k=4)
        rt = topo.routing_tables
        inter_pod = topo.node("h_2_0_0").host_id
        intra_pod = topo.node("h_0_1_0").host_id
        same_tor = topo.node("h_0_0_1").host_id
        assert len(rt.ports_for("tor_0_0", inter_pod)) == 2  # k/2 uplinks
        assert len(rt.ports_for("agg_0_0", inter_pod)) == 2  # k/2 cores
        assert len(rt.ports_for("tor_0_0", intra_pod)) == 2
        assert len(rt.ports_for("tor_0_0", same_tor)) == 1

    def test_jellyfish_has_multipath_under_lb(self, sim):
        topo = jellyfish(
            sim, n_switches=8, switch_degree=4, hosts_per_switch=2, lb=LbConfig("ecmp")
        )
        rt = topo.routing_tables
        multi = sum(
            1
            for sw in topo.switches
            for dst in range(len(topo.hosts))
            if len(rt.tables[sw.name].get(dst, [])) > 1
        )
        assert multi > 0  # the random regular graph offers real choices

    def test_ecmp_symmetry_preserved_under_new_interface(self, sim):
        """The Fig. 5 property must survive the LB refactor byte-for-byte."""
        topo = fattree(sim, k=4)
        a = topo.node("h_0_0_0").host_id
        b = topo.node("h_2_1_0").host_id
        for flow_id in range(24):
            data_path = trace_path(topo, a, b, flow_id, kind=DATA)
            ack_path = trace_path(topo, b, a, flow_id, kind=ACK)
            assert ack_path == data_path[::-1]

    def test_spray_keeps_acks_deliverable(self, sim):
        """Even under spray, ACK routing must reach the sender (stable
        flow-hash fallback)."""
        topo = fresh_fattree(sim, "spray")
        a = topo.node("h_0_0_0").host_id
        b = topo.node("h_2_1_0").host_id
        path = trace_path(topo, b, a, flow_id=3, kind=ACK)
        assert path  # trace_path asserts delivery internally
