"""Topology builders: shapes, wiring, RTT arithmetic."""

import networkx as nx
import pytest

from repro.sim.engine import Simulator
from repro.topo.base import LinkSpec, Topology
from repro.topo.dumbbell import dumbbell
from repro.topo.fattree import fattree, n_hosts
from repro.topo.jellyfish import jellyfish
from repro.topo.parkinglot import congestion_at
from repro.topo.star import star
from repro.units import ACK_SIZE, DEFAULT_MTU, serialization_ps, us


class TestTopologyContainer:
    def test_duplicate_names_rejected(self, sim):
        topo = Topology(sim)
        topo.add_host("x")
        with pytest.raises(ValueError):
            topo.add_host("x")
        with pytest.raises(ValueError):
            topo.add_switch("x")

    def test_link_records_graph_metadata(self, sim):
        topo = Topology(sim, default_link=LinkSpec(200.0, us(2)))
        a = topo.add_host("a")
        s = topo.add_switch("s")
        topo.link(a, s)
        e = topo.graph.edges["a", "s"]
        assert e["rate_gbps"] == 200.0
        assert e["prop_delay_ps"] == us(2)
        assert e["ports"]["a"] == 0

    def test_link_by_name(self, sim):
        topo = Topology(sim)
        topo.add_host("a")
        topo.add_switch("s")
        topo.link("a", "s")
        assert topo.graph.has_edge("a", "s")

    def test_host_ids_sequential(self, sim):
        topo = Topology(sim)
        hosts = [topo.add_host(f"h{i}") for i in range(4)]
        assert [h.host_id for h in hosts] == [0, 1, 2, 3]
        assert topo.host_by_id(2) is hosts[2]


class TestBaseRtt:
    def test_single_switch_rtt_formula(self, sim):
        topo = star(sim, 2, link=LinkSpec(100.0, us(1.5)))
        rtt = topo.base_rtt_ps(0, 1)
        fwd = 2 * (serialization_ps(DEFAULT_MTU, 100.0) + us(1.5))
        back = 2 * (serialization_ps(ACK_SIZE, 100.0) + us(1.5))
        assert rtt == fwd + back

    def test_rtt_symmetric(self, sim):
        topo = dumbbell(sim, n_senders=2)
        assert topo.base_rtt_ps(0, 2) == topo.base_rtt_ps(2, 0)

    def test_bottleneck_rate(self, sim):
        topo = Topology(sim)
        a, b = topo.add_host("a"), topo.add_host("b")
        s = topo.add_switch("s")
        topo.link(a, s, rate_gbps=100.0)
        topo.link(s, b, rate_gbps=25.0)
        assert topo.bottleneck_gbps(0, 1) == 25.0


class TestDumbbell:
    def test_shape(self, sim):
        topo = dumbbell(sim, n_senders=3, n_switches=4)
        assert len(topo.hosts) == 4  # 3 senders + receiver
        assert len(topo.switches) == 4
        # Chain: senders all on sw0, receiver on sw3.
        assert topo.graph.has_edge("sender0", "sw0")
        assert topo.graph.has_edge("sw3", "receiver0")
        assert not topo.graph.has_edge("sw0", "sw2")

    def test_receiver_is_last_host(self, sim):
        topo = dumbbell(sim, n_senders=2)
        assert topo.hosts[-1].name == "receiver0"

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            dumbbell(sim, n_senders=0)
        with pytest.raises(ValueError):
            dumbbell(sim, n_switches=0)


class TestParkingLot:
    def test_first_hop_congested_port(self, sim):
        topo = congestion_at(sim, "first")
        assert topo.congested_switch_index == 0

    def test_middle_and_last(self, sim):
        assert congestion_at(sim, "middle").congested_switch_index == 1
        topo = congestion_at(Simulator(), "last")
        assert topo.congested_switch_index == 2

    def test_sender1_attachment_varies(self, sim):
        t_first = congestion_at(sim, "first")
        assert t_first.graph.has_edge("sender1", "sw0")
        t_last = congestion_at(Simulator(), "last")
        assert t_last.graph.has_edge("sender1", "sw2")

    def test_unknown_location_rejected(self, sim):
        with pytest.raises(ValueError):
            congestion_at(sim, "everywhere")


class TestFatTree:
    def test_host_count_k4(self, sim):
        topo = fattree(sim, k=4)
        assert len(topo.hosts) == n_hosts(4) == 16
        assert len(topo.switches) == 4 + 4 * 4  # 4 cores + (2 agg + 2 tor) * 4 pods

    def test_every_host_path_exists(self, sim):
        topo = fattree(sim, k=4)
        g = topo.graph
        assert nx.is_connected(g)
        assert nx.shortest_path_length(g, "h_0_0_0", "h_3_1_1") == 6  # up to core, down

    def test_intra_tor_path_short(self, sim):
        topo = fattree(sim, k=4)
        assert nx.shortest_path_length(topo.graph, "h_0_0_0", "h_0_0_1") == 2

    def test_odd_k_rejected(self, sim):
        with pytest.raises(ValueError):
            fattree(sim, k=3)

    def test_agg_to_core_wiring_consistent(self, sim):
        """agg_{pod}_{i} must reach exactly cores core_{i}_{*} — the wiring
        that makes sorted-list ECMP symmetric."""
        topo = fattree(sim, k=4)
        for pod in range(4):
            for i in range(2):
                cores = {
                    n for n in topo.graph["agg_" + f"{pod}_{i}"] if n.startswith("core")
                }
                assert cores == {f"core_{i}_0", f"core_{i}_1"}


class TestStar:
    def test_shape(self, sim):
        topo = star(sim, 5)
        assert len(topo.hosts) == 5
        assert len(topo.switches) == 1
        assert topo.graph.degree["sw0"] == 5

    def test_needs_two_hosts(self, sim):
        with pytest.raises(ValueError):
            star(sim, 1)


class TestJellyfish:
    def test_regular_degree(self, sim):
        topo = jellyfish(sim, n_switches=8, switch_degree=4, hosts_per_switch=1)
        for sw in topo.switches:
            # switch_degree fabric links + 1 host link
            assert topo.graph.degree[sw.name] == 5

    def test_deterministic_given_seed(self):
        from repro.sim.rng import SeedSequenceFactory

        t1 = jellyfish(Simulator(), seeds=SeedSequenceFactory(5))
        t2 = jellyfish(Simulator(), seeds=SeedSequenceFactory(5))
        assert sorted(t1.graph.edges) == sorted(t2.graph.edges)

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            jellyfish(sim, n_switches=4, switch_degree=4)
        with pytest.raises(ValueError):
            jellyfish(sim, n_switches=5, switch_degree=3)
