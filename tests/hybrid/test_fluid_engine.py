"""Incremental max-min fluid engine: exactness, stalls, capacity
schedules, and the tier-exchange instrumentation the hybrid backend
reads (congestion intervals, background byte integrals)."""

import pytest

from repro.analysis.flowsim import FlowLevelSimulator
from repro.hybrid.fluid import FluidEngine, FluidStallError
from repro.transport.flow import Flow
from repro.units import MB, us


def simple_sim():
    fls = FlowLevelSimulator()
    fls.add_link("a", "s", 100.0, us(1))
    fls.add_link("b", "s", 100.0, us(1))
    fls.add_link("s", "r", 100.0, us(1))
    return fls


def path_via_s(flow):
    src = "a" if flow.src == 0 else "b"
    return [(src, "s"), ("s", "r")]


class TestExactness:
    def test_matches_brute_force_global_waterfill(self):
        """The incremental ripple must land on the same max-min allocation
        as recomputing the exact global waterfill at every event."""
        # Capacities in bytes/ps (10/25/40 Gb/s).
        caps = [10.0 / 8000, 25.0 / 8000, 40.0 / 8000]
        paths = [(0,), (1,), (2,), (0, 1), (1, 2), (0, 1, 2)]
        sizes = [3 * MB, 1 * MB, 5 * MB, 2 * MB, 4 * MB, 1 * MB]
        starts = [0, us(10), us(25), us(40), us(55), us(70)]

        def brute_force():
            # Event-driven exact max-min: recompute the full waterfill on
            # every arrival/completion, advance to the next event.
            rem = {i: float(s) for i, s in enumerate(sizes)}
            done, finish, t = set(), {}, 0.0
            while len(done) < len(sizes):
                active = [i for i in rem if i not in done and starts[i] <= t + 1e-6]
                rates = {i: 0.0 for i in active}
                avail = dict(enumerate(caps))
                frozen = set()
                while len(frozen) < len(active):
                    load = {l: 0 for l in avail}
                    for i in active:
                        if i in frozen:
                            continue
                        for l in paths[i]:
                            load[l] += 1
                    share, bl = min(
                        (avail[l] / load[l], l) for l in load if load[l]
                    )
                    for i in active:
                        if i in frozen or bl not in paths[i]:
                            continue
                        rates[i] = share
                        frozen.add(i)
                        for l in paths[i]:
                            avail[l] -= share
                next_arrival = min(
                    (starts[i] for i in rem if i not in done and starts[i] > t),
                    default=float("inf"),
                )
                next_completion, who = float("inf"), None
                for i in active:
                    if rates[i] > 0 and rem[i] / rates[i] + t < next_completion:
                        next_completion, who = rem[i] / rates[i] + t, i
                nxt = min(next_arrival, next_completion)
                assert nxt != float("inf")
                for i in active:
                    rem[i] -= rates[i] * (nxt - t)
                t = nxt
                if next_completion <= next_arrival and who is not None:
                    done.add(who)
                    finish[who] = t
            return finish

        eng = FluidEngine(caps, rate_eps=0.0)
        for i in range(len(sizes)):
            eng.add_flow(list(paths[i]), sizes[i], starts[i])
        got = {r.index: r.finish for r in eng.run()}
        want = brute_force()
        for i in want:
            assert got[i] == pytest.approx(want[i], rel=1e-6)

    def test_rate_eps_zero_single_flow_is_clean(self):
        eng = FluidEngine([100.0 / 8000], rate_eps=0.0)
        eng.add_flow([0], 10 * MB, 0)
        (res,) = eng.run()
        assert res.clean
        # 10 MB at 100 Gb/s: size / (bytes/ps).
        assert res.finish == pytest.approx(10 * MB * 8000.0 / 100.0)

    def test_sharing_marks_flows_dirty(self):
        eng = FluidEngine([100.0 / 8000], rate_eps=0.0)
        eng.add_flow([0], 10 * MB, 0)
        eng.add_flow([0], 10 * MB, 0)
        for res in eng.run():
            assert not res.clean


class TestRippleRounds:
    def test_validation(self):
        with pytest.raises(ValueError):
            FluidEngine([100.0], ripple_rounds=0)

    def test_capped_ripple_still_conserves_flows(self):
        fls = simple_sim()
        flows = [Flow(i, i % 2, 9, (i + 1) * MB, start_ps=us(40 * i)) for i in range(8)]
        res = fls.run(flows, path_via_s, ripple_rounds=1)
        assert res.completed() == 8
        # Capacity is never overcommitted, so no slowdown dips below 1.
        assert min(res.slowdowns()) >= 0.99


class TestStall:
    def test_stall_error_is_a_clean_runtime_error(self):
        # The guard for "every active flow has zero max-min rate" (the old
        # bare `min() arg is an empty sequence` crash) is a typed error.
        assert issubclass(FluidStallError, RuntimeError)

    def test_zero_capacity_schedule_rejected_up_front(self):
        # Zero capacity is not representable (it could strand flows with
        # no future event to wake them); the schedule validates instead of
        # stalling mid-run.
        fls = simple_sim()
        sched = [(0, ("s", "r"), 0.0)]
        with pytest.raises(ValueError, match="capacity schedule"):
            fls.run([Flow(0, 0, 9, MB)], path_via_s, cap_schedule=sched)

    def test_deep_capacity_dip_recovers(self):
        fls = simple_sim()
        sched = [(0, ("s", "r"), 0.1), (us(100), ("s", "r"), 100.0)]
        res = fls.run([Flow(0, 0, 9, MB)], path_via_s, cap_schedule=sched)
        assert res.completed() == 1
        # The flow crawled at 0.1 Gb/s for 100 us, then ran at line rate.
        assert res.records[0].fct_ps > us(100)


class TestCapSchedule:
    def test_halved_capacity_doubles_fct(self):
        fls = simple_sim()
        base = fls.run([Flow(0, 0, 9, 10 * MB)], path_via_s)
        halved = simple_sim().run(
            [Flow(0, 0, 9, 10 * MB)],
            path_via_s,
            cap_schedule=[(0, ("s", "r"), 50.0)],
        )
        assert halved.records[0].fct_ps == pytest.approx(
            2 * base.records[0].fct_ps, rel=0.01
        )


class TestTierExchange:
    def test_congestion_intervals_recorded_above_threshold(self):
        fls = simple_sim()
        flows = [Flow(0, 0, 9, 10 * MB), Flow(1, 1, 9, 10 * MB)]
        res = fls.run(flows, path_via_s, congestion=(0.9, 2))
        ivs = res.congestion_intervals.get(("s", "r"))
        assert ivs, "two full-rate flows sharing s->r must flag it congested"
        # The overlap period (both flows active, 100% utilization).
        assert ivs[0][1] > ivs[0][0]
        # Single-flow links never have >= 2 flows: not congested.
        assert ("a", "s") not in res.congestion_intervals

    def test_min_link_flows_gates_congestion(self):
        fls = simple_sim()
        flows = [Flow(0, 0, 9, 10 * MB), Flow(1, 1, 9, 10 * MB)]
        res = fls.run(flows, path_via_s, congestion=(0.9, 3))
        assert ("s", "r") not in res.congestion_intervals

    def test_bg_bytes_integrates_flow_volume(self):
        fls = simple_sim()
        flows = [Flow(0, 0, 9, 10 * MB), Flow(1, 1, 9, 4 * MB)]
        res = fls.run(flows, path_via_s, bg=(us(50), [("s", "r")], [0, 1]))
        total = sum(res.bg_bytes[("s", "r")].values())
        # Wire bytes exceed payload (header overhead), within a few %.
        assert total >= 14 * MB
        assert total <= 14.8 * MB

    def test_bg_subset_only_counts_listed_flows(self):
        fls = simple_sim()
        flows = [Flow(0, 0, 9, 10 * MB), Flow(1, 1, 9, 4 * MB)]
        res = fls.run(flows, path_via_s, bg=(us(50), [("s", "r")], [1]))
        total = sum(res.bg_bytes[("s", "r")].values())
        assert 4 * MB <= total <= 4.3 * MB
