"""Hybrid backend tier-boundary properties (ISSUE 6 test checklist).

Every test here runs a deliberately small fabric — the full-fidelity gate
lives in ``repro.hybrid.validate`` and ``benchmarks/test_hybrid_validation``.
"""

import random

import pytest

from repro.analysis.flowsim import from_topology
from repro.experiments.common import launch_flows
from repro.experiments.fct_experiment import (
    build_fct_fabric,
    run_fct_experiment,
    run_fct_summary,
)
from repro.hybrid import BACKENDS, Simulator
from repro.hybrid.backend import HybridConfig, HybridSimulator, run_fct_hybrid
from repro.metrics.fct import FctCollector
from repro.sim.engine import Simulator as EventSimulator
from repro.topo.dumbbell import dumbbell
from repro.transport.flow import Flow
from repro.units import MB, us

#: One small fabric cell shared by the parity tests: big enough to see
#: real sharing, small enough that the packet run stays in the seconds.
CELL = dict(workload="websearch", k=4, load=0.5, n_flows=30, scale=0.1, seed=2)


def packet_fingerprint(res):
    return tuple(sorted((r.flow.flow_id, r.fct_ps) for r in res.collector.records))


class TestDegenerateTiers:
    def test_threshold_zero_is_byte_identical_to_packet(self):
        """threshold=0 demotes everything: the hybrid *is* the packet
        engine, and the FCT fingerprint must match byte for byte."""
        pres = run_fct_experiment("fncc", **CELL)
        hres = run_fct_hybrid("fncc", threshold=0, **CELL)
        assert hres.stats["demoted"] == CELL["n_flows"]
        assert hres.fct_fingerprint() == packet_fingerprint(pres)

    def test_threshold_inf_reproduces_flowsim(self):
        """threshold=∞ keeps everything fluid: identical to running the
        flow-level simulator directly on the same fabric and flow set."""
        hres = run_fct_hybrid("fncc", threshold=None, **CELL)
        assert hres.stats["fluid"] == CELL["n_flows"]

        cfg = HybridConfig()
        fab = build_fct_fabric("fncc", **CELL)
        fls, path_fn = from_topology(fab.topo)
        fres = fls.run(
            fab.flows, path_fn, rate_eps=cfg.rate_eps, ripple_rounds=cfg.ripple_rounds
        )
        want = tuple(sorted((r.flow.flow_id, r.fct_ps) for r in fres.records))
        assert hres.fct_fingerprint() == want

    def test_single_flow_slowdown_is_exactly_one(self):
        """An uncontended flow advances in closed form at its solo
        bottleneck rate: FCT == ideal FCT *exactly*, not approximately."""
        res = run_fct_hybrid(
            "fncc", workload="websearch", k=4, load=0.5, n_flows=1, scale=0.1, seed=3
        )
        assert res.completed() == 1
        rec = res.records[0]
        assert rec.fct_ps == rec.ideal_fct_ps
        assert rec.slowdown == 1.0


class TestPartitionInvariance:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_partition_conserves_flows(self, seed):
        """Any demotion choice — even a coin flip per flow — must complete
        every flow exactly once: no losses, no double completions."""
        rng = random.Random(seed)
        picks = {}

        def classify(flow):
            return picks.setdefault(flow.flow_id, rng.random() < 0.5)

        res = run_fct_hybrid("fncc", classify_fn=classify, **CELL)
        ids = [fid for fid, _ in res.fct_fingerprint()]
        assert len(ids) == CELL["n_flows"]
        assert len(set(ids)) == CELL["n_flows"]
        assert res.stats["demoted"] == sum(picks.values())
        assert res.stats["demoted"] + res.stats["fluid"] == CELL["n_flows"]

    def test_all_true_partition_matches_packet(self):
        res = run_fct_hybrid("fncc", classify_fn=lambda f: True, **CELL)
        pres = run_fct_experiment("fncc", **CELL)
        assert res.fct_fingerprint() == packet_fingerprint(pres)

    def test_all_false_partition_is_pure_fluid(self):
        res = run_fct_hybrid("fncc", classify_fn=lambda f: False, **CELL)
        assert res.stats["demoted"] == 0
        assert res.completed() == CELL["n_flows"]


class TestDumbbellFairness:
    def test_fluid_tier_fairness_matches_packet(self):
        """Two equal elephants on the dumbbell: the fluid tier's max-min
        split must agree with the packet engine's CC-converged split."""
        sim = EventSimulator()
        topo = dumbbell(sim, n_senders=2)
        fls, path_fn = from_topology(topo)
        recv = topo.hosts[-1].host_id
        flows = [Flow(0, 0, recv, 5 * MB), Flow(1, 1, recv, 5 * MB)]
        fres = fls.run(flows, path_fn)
        fluid = sorted(r.slowdown for r in fres.records)
        # Max-min says the two shares are identical.
        assert fluid[0] == pytest.approx(fluid[1], rel=1e-9)

        from helpers import make_dumbbell

        sim2 = EventSimulator()
        topo2, env = make_dumbbell(sim2, cc="fncc")
        col = FctCollector(topo2)
        recv2 = topo2.hosts[-1].host_id
        launch_flows(
            topo2, [Flow(0, 0, recv2, 5 * MB), Flow(1, 1, recv2, 5 * MB)], env
        )
        sim2.run(until=us(20_000))
        pkt = sorted(r.slowdown for r in col.records)
        assert len(pkt) == 2
        for fs, ps in zip(fluid, pkt):
            assert ps == pytest.approx(fs, rel=0.25)


class TestBackendSelection:
    def test_simulator_factory(self):
        from repro.analysis.flowsim import FlowLevelSimulator

        assert set(BACKENDS) == {"packet", "flow", "hybrid"}
        assert isinstance(Simulator(backend="hybrid"), HybridSimulator)
        assert isinstance(Simulator(backend="flow"), FlowLevelSimulator)
        assert isinstance(Simulator(backend="packet"), EventSimulator)
        with pytest.raises(ValueError):
            Simulator(backend="ns3")

    def test_run_fct_summary_backend_dispatch(self):
        kw = dict(workload="websearch", k=4, load=0.5, n_flows=8, scale=0.1)
        for backend in ("flow", "hybrid"):
            s = run_fct_summary("fncc", seed=4, backend=backend, **kw)
            assert s.backend == backend
            assert s.completed() == 8
        with pytest.raises(ValueError):
            run_fct_summary("fncc", backend="ns3", **kw)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HybridConfig(min_link_flows=0)
        with pytest.raises(ValueError):
            HybridConfig(residual_floor=1.0)
        with pytest.raises(ValueError):
            HybridConfig(epoch_us=0)
        with pytest.raises(ValueError):
            HybridConfig(mouse_bytes=-1)
        with pytest.raises(ValueError):
            HybridConfig(congested_frac=1.5)
        with pytest.raises(ValueError):
            HybridConfig(ripple_rounds=0)
