"""Cross-directory test helpers (importable because conftest.py puts the
tests/ directory on sys.path)."""

from repro.experiments.common import build_cc_env, launch_flows
from repro.sim.rng import SeedSequenceFactory
from repro.topo.base import LinkSpec
from repro.topo.dumbbell import dumbbell
from repro.transport.flow import Flow
from repro.units import MB, us


def make_dumbbell(sim, cc="fncc", n_senders=2, rate=100.0, **env_kw):
    """A wired dumbbell with the CC's switch config applied."""
    env = build_cc_env(cc, link_rate_gbps=rate, **env_kw)
    topo = dumbbell(
        sim,
        n_senders=n_senders,
        n_switches=3,
        link=LinkSpec(rate_gbps=rate, prop_delay_ps=us(1.5)),
        switch_config=env.switch_config,
        seeds=SeedSequenceFactory(7),
        cnp_enabled=env.cnp_enabled,
    )
    env.post_install(topo)
    return topo, env


def run_one_flow(sim, topo, env, size_bytes=2 * MB, src=0, horizon_us=5000):
    """Start a single flow and run to completion; returns the receiver QP."""
    dst = topo.hosts[-1].host_id
    flow = Flow(0, src, dst, size_bytes)
    launch_flows(topo, [flow], env)
    sim.run(until=us(horizon_us))
    return topo.hosts[dst].receivers[0]
