"""Workload generators: Poisson load calibration and the canned patterns."""

import pytest

from repro.sim.rng import SeedSequenceFactory
from repro.traffic.cdf import PiecewiseCdf
from repro.traffic.generator import (
    PoissonWorkload,
    incast_flows,
    permutation_flows,
    staggered_elephants,
)
from repro.units import SEC, us

UNIFORM = PiecewiseCdf([(10_000, 0.0), (20_000, 1.0)])


class TestPoisson:
    def make(self, load=0.5, n_hosts=8, seed=1):
        return PoissonWorkload(
            n_hosts=n_hosts,
            host_rate_gbps=100.0,
            cdf=UNIFORM,
            load=load,
            seeds=SeedSequenceFactory(seed),
        )

    def test_arrival_rate_matches_load(self):
        w = self.make(load=0.5, n_hosts=8)
        # 0.5 * 8 hosts * 100 Gb/s / 8 bits / mean 15 KB.
        expected = 0.5 * 8 * 100e9 / 8 / 15_000
        assert w.lambda_flows_per_sec == pytest.approx(expected, rel=0.01)

    def test_generated_load_empirical(self):
        w = self.make(load=0.3, n_hosts=4)
        flows = w.generate(4000)
        span_s = (flows[-1].start_ps - flows[0].start_ps) / SEC
        offered = sum(f.size_bytes for f in flows) * 8 / span_s  # bits/s
        capacity = 4 * 100e9
        assert offered / capacity == pytest.approx(0.3, rel=0.1)

    def test_endpoints_distinct_and_in_range(self):
        flows = self.make().generate(500)
        for f in flows:
            assert f.src != f.dst
            assert 0 <= f.src < 8 and 0 <= f.dst < 8

    def test_start_times_monotonic(self):
        flows = self.make().generate(100)
        starts = [f.start_ps for f in flows]
        assert starts == sorted(starts)

    def test_deterministic_in_seed(self):
        a = self.make(seed=5).generate(50)
        b = self.make(seed=5).generate(50)
        assert [(f.src, f.dst, f.size_bytes, f.start_ps) for f in a] == [
            (f.src, f.dst, f.size_bytes, f.start_ps) for f in b
        ]

    def test_different_seeds_differ(self):
        a = self.make(seed=1).generate(50)
        b = self.make(seed=2).generate(50)
        assert [f.size_bytes for f in a] != [f.size_bytes for f in b]

    def test_flow_ids_sequential_from_first(self):
        w = PoissonWorkload(
            n_hosts=4,
            host_rate_gbps=100.0,
            cdf=UNIFORM,
            load=0.5,
            seeds=SeedSequenceFactory(1),
            first_flow_id=100,
        )
        flows = w.generate(10)
        assert [f.flow_id for f in flows] == list(range(100, 110))

    def test_load_bounds(self):
        with pytest.raises(ValueError):
            self.make(load=0.0)
        with pytest.raises(ValueError):
            self.make(load=1.0)


class TestPatterns:
    def test_staggered_elephants_spacing(self):
        flows = staggered_elephants([0, 1, 2], 9, 1_000_000, stagger_ps=us(300))
        assert [f.start_ps for f in flows] == [0, us(300), us(600)]
        assert all(f.dst == 9 for f in flows)

    def test_incast_simultaneous(self):
        flows = incast_flows(range(8), 9, 50_000, start_ps=us(10))
        assert len(flows) == 8
        assert all(f.start_ps == us(10) for f in flows)
        assert all(f.dst == 9 for f in flows)

    def test_permutation_is_derangement(self):
        flows = permutation_flows(range(10), 1000, SeedSequenceFactory(3))
        assert len(flows) == 10
        assert all(f.src != f.dst for f in flows)
        assert sorted(f.dst for f in flows) == list(range(10))

    def test_permutation_deterministic(self):
        a = permutation_flows(range(10), 1000, SeedSequenceFactory(3))
        b = permutation_flows(range(10), 1000, SeedSequenceFactory(3))
        assert [f.dst for f in a] == [f.dst for f in b]

    def test_permutation_needs_two(self):
        with pytest.raises(ValueError):
            permutation_flows([0], 1000, SeedSequenceFactory(1))
