"""Piecewise CDF sampling and moments."""

import random

import numpy as np
import pytest

from repro.traffic.cdf import PiecewiseCdf
from repro.traffic.distributions import FB_HADOOP_CDF, WEBSEARCH_CDF, fb_hadoop_cdf, websearch_cdf


class TestValidation:
    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            PiecewiseCdf([(100, 1.0)])

    def test_sizes_strictly_increasing(self):
        with pytest.raises(ValueError):
            PiecewiseCdf([(100, 0.0), (100, 1.0)])

    def test_probs_nondecreasing(self):
        with pytest.raises(ValueError):
            PiecewiseCdf([(1, 0.5), (2, 0.2), (3, 1.0)])

    def test_must_end_at_one(self):
        with pytest.raises(ValueError):
            PiecewiseCdf([(1, 0.0), (2, 0.9)])

    def test_scale_positive(self):
        with pytest.raises(ValueError):
            PiecewiseCdf([(1, 0.0), (2, 1.0)], scale=0)


class TestSampling:
    CDF = [(1000, 0.0), (2000, 0.5), (10_000, 1.0)]

    def test_samples_within_support(self):
        cdf = PiecewiseCdf(self.CDF)
        rng = random.Random(1)
        for _ in range(500):
            assert 1000 <= cdf.sample(rng) <= 10_000

    def test_median_matches_quantile(self):
        cdf = PiecewiseCdf(self.CDF)
        assert cdf.quantile(0.5) == 2000

    def test_quantile_bounds(self):
        cdf = PiecewiseCdf(self.CDF)
        assert cdf.quantile(0.0) == 1000
        assert cdf.quantile(1.0) == 10_000
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_scale_multiplies_sizes(self):
        cdf = PiecewiseCdf(self.CDF, scale=0.1)
        assert cdf.quantile(1.0) == 1000
        assert cdf.mean() == pytest.approx(PiecewiseCdf(self.CDF).mean() * 0.1)

    def test_scaled_copy(self):
        base = PiecewiseCdf(self.CDF)
        small = base.scaled(0.5)
        assert small.mean() == pytest.approx(base.mean() * 0.5)
        assert base.scale == 1.0  # original untouched

    def test_sample_many_matches_distribution(self):
        cdf = PiecewiseCdf(self.CDF)
        rng = np.random.default_rng(1)
        xs = cdf.sample_many(rng, 20_000)
        assert abs(np.median(xs) - 2000) / 2000 < 0.05

    def test_empirical_mean_matches_analytic(self):
        cdf = PiecewiseCdf(self.CDF)
        rng = np.random.default_rng(2)
        xs = cdf.sample_many(rng, 50_000)
        assert abs(xs.mean() - cdf.mean()) / cdf.mean() < 0.03

    def test_deterministic_given_rng(self):
        cdf = PiecewiseCdf(self.CDF)
        a = [cdf.sample(random.Random(7)) for _ in range(1)]
        b = [cdf.sample(random.Random(7)) for _ in range(1)]
        assert a == b


class TestPaperDistributions:
    def test_websearch_breakpoints_match_fig14_bins(self):
        from repro.metrics.fct import SIZE_BINS_WEBSEARCH

        sizes = [s for s, _ in WEBSEARCH_CDF]
        for b in SIZE_BINS_WEBSEARCH:
            assert b in sizes

    def test_hadoop_breakpoints_match_fig15_bins(self):
        from repro.metrics.fct import SIZE_BINS_HADOOP

        sizes = [s for s, _ in FB_HADOOP_CDF]
        for b in SIZE_BINS_HADOOP:
            assert b in sizes

    def test_websearch_mean_is_mb_scale(self):
        m = websearch_cdf().mean()
        assert 1e6 < m < 4e6  # the DCTCP websearch mean is ~1.6-2.5 MB

    def test_hadoop_mostly_small(self):
        cdf = fb_hadoop_cdf()
        assert cdf.quantile(0.8) <= 10_000  # 80% of flows <= 10 KB

    def test_scaled_factories(self):
        assert websearch_cdf(scale=0.1).mean() == pytest.approx(
            websearch_cdf().mean() * 0.1
        )
