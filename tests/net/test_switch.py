"""Switch behaviour: forwarding, shared buffer, PFC, INT insertion (Alg. 1)."""

import pytest

from repro.net.node import Node
from repro.net.packet import ACK, DATA, PAUSE, RESUME, Packet
from repro.net.port import connect
from repro.net.switch import INT_RECORD_BYTES, IntMode, Switch, SwitchConfig
from repro.units import ACK_SIZE, KB, serialization_ps


class Endpoint(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.arrivals = []

    def receive(self, pkt, in_port):
        self.arrivals.append((self.sim.now, pkt))


def chain(sim, config=None, rate=100.0, delay=0):
    """host_a -- switch -- host_b; static router by dst id (a=0, b=1)."""
    sw = Switch(sim, "sw", config or SwitchConfig())
    a = Endpoint(sim, "a")
    b = Endpoint(sim, "b")
    connect(sim, a, sw, rate, delay)  # sw port 0 <-> a
    connect(sim, sw, b, rate, delay)  # sw port 1 <-> b

    def router(s, pkt):
        return 1 if pkt.dst == 1 else 0

    sw.router = router
    return a, sw, b


def data(seq=0, size=1518, src=0, dst=1, flow=0):
    return Packet(DATA, flow_id=flow, src=src, dst=dst, seq=seq, size=size, payload=size - 48)


def ack(seq=0, src=1, dst=0, flow=0):
    return Packet(ACK, flow_id=flow, src=src, dst=dst, seq=seq, size=ACK_SIZE)


class TestForwarding:
    def test_routes_by_destination(self, sim):
        a, sw, b = chain(sim)
        a.ports[0].enqueue(data(dst=1))
        sim.run()
        assert len(b.arrivals) == 1 and a.arrivals == []

    def test_hop_counter_increments(self, sim):
        a, sw, b = chain(sim)
        a.ports[0].enqueue(data())
        sim.run()
        assert b.arrivals[0][1].hops == 1

    def test_no_router_raises(self, sim):
        sw = Switch(sim, "sw", SwitchConfig())
        a = Endpoint(sim, "a")
        connect(sim, a, sw, 100.0, 0)
        a.ports[0].enqueue(data())
        with pytest.raises(RuntimeError):
            sim.run()

    def test_routing_loop_detected(self, sim):
        a, sw, b = chain(sim)
        sw.router = lambda s, pkt: pkt.in_port  # bounce back
        a.ports[0].enqueue(data())
        with pytest.raises(RuntimeError):
            sim.run()

    def test_switch_latency_delays_forwarding(self, sim):
        cfg = SwitchConfig(latency_ps=5000)
        a, sw, b = chain(sim, cfg)
        a.ports[0].enqueue(data())
        sim.run()
        base = 2 * serialization_ps(1518, 100.0)
        assert b.arrivals[0][0] == base + 5000


class TestSharedBuffer:
    def test_drop_when_buffer_full(self, sim):
        cfg = SwitchConfig(buffer_bytes=2000, pfc_enabled=False)
        a, sw, b = chain(sim, cfg)
        sw.ports[1].pause(0)  # block the egress so the shared buffer fills
        for i in range(5):
            a.ports[0].enqueue(data(flow=i))
        sim.run(until=5_000_000)
        assert sw.drops > 0
        sw.ports[1].resume(0)
        sim.run()
        assert len(b.arrivals) + sw.drops == 5

    def test_buffer_released_on_departure(self, sim):
        a, sw, b = chain(sim)
        for i in range(3):
            a.ports[0].enqueue(data(flow=i))
        sim.run()
        assert sw.buffer_used == 0


class TestPfc:
    def make(self, sim, xoff=4 * KB):
        cfg = SwitchConfig(pfc_enabled=True, pfc_xoff=xoff, pfc_xon=xoff - 2 * 1518)
        return chain(sim, cfg)

    def test_pause_sent_when_xoff_crossed(self, sim):
        a, sw, b = self.make(sim)
        # Pause the egress toward b so packets pile up inside the switch.
        sw.ports[1].pause(0)
        for i in range(6):
            a.ports[0].enqueue(data(flow=i))
        sim.run(until=10_000_000)
        pauses = [p for _, p in a.arrivals if p.kind == PAUSE]
        assert len(pauses) >= 1
        assert sw.ports[0].stats.pause_sent >= 1

    def test_resume_sent_after_drain(self, sim):
        a, sw, b = self.make(sim)
        sw.ports[1].pause(0)
        for i in range(6):
            a.ports[0].enqueue(data(flow=i))
        sim.run(until=2_000_000)
        sw.ports[1].resume(0)
        sim.run()
        kinds = [p.kind for _, p in a.arrivals]
        assert PAUSE in kinds and RESUME in kinds
        assert len(b.arrivals) == 6  # lossless: everything delivered

    def test_pause_received_pauses_that_port(self, sim):
        a, sw, b = self.make(sim)
        frame = Packet(PAUSE, size=64)
        frame.pause_prio = 0
        b.ports[0].enqueue(frame)  # b pauses the switch's egress toward b
        sim.run()
        a.ports[0].enqueue(data())
        sim.run(until=5_000_000)
        assert b.arrivals == []
        resume = Packet(RESUME, size=64)
        b.ports[0].enqueue(resume)
        sim.run()
        assert len(b.arrivals) == 1

    def test_no_pause_when_disabled(self, sim):
        cfg = SwitchConfig(pfc_enabled=False, buffer_bytes=10**9)
        a, sw, b = chain(sim, cfg)
        sw.ports[1].pause(0)
        for i in range(50):
            a.ports[0].enqueue(data(flow=i))
        sim.run(until=10_000_000)
        assert sw.ports[0].stats.pause_sent == 0

    def test_xon_must_not_exceed_xoff(self):
        with pytest.raises(ValueError):
            SwitchConfig(pfc_xoff=1000, pfc_xon=2000)


class TestPfcFrameLedger:
    """Satellite fix: XON frames are now counted on receive
    (``resume_received``), so Fig. 3 pause-frame totals reconcile tx
    against rx instead of silently dropping every second frame kind."""

    def test_switch_to_switch_ledger_balances(self, sim):
        # a -- sw1 -- sw2 -- b with a tight XOFF on sw2 only: sw2 pauses
        # and later resumes sw1's egress.  After a full drain every PFC
        # frame sw2 sent must be counted once by sw1.
        tight = SwitchConfig(pfc_enabled=True, pfc_xoff=4 * KB, pfc_xon=4 * KB - 2 * 1518)
        loose = SwitchConfig(pfc_enabled=True, pfc_xoff=10**9)
        sw1 = Switch(sim, "sw1", loose)
        sw2 = Switch(sim, "sw2", tight)
        a = Endpoint(sim, "a")
        b = Endpoint(sim, "b")
        connect(sim, a, sw1, 100.0, 0)  # sw1 port 0
        connect(sim, sw1, sw2, 100.0, 0)  # sw1 port 1 <-> sw2 port 0
        connect(sim, sw2, b, 100.0, 0)  # sw2 port 1
        sw1.router = lambda s, pkt: 1 if pkt.dst == 1 else 0
        sw2.router = lambda s, pkt: 1 if pkt.dst == 1 else 0

        sw2.ports[1].pause(0)  # hold sw2's egress so its ingress fills
        for i in range(8):
            a.ports[0].enqueue(data(flow=i))
        sim.run(until=5_000_000)
        assert sw2.ports[0].stats.pause_sent >= 1
        sw2.ports[1].resume(0)
        sim.run()

        tx = sw2.ports[0].stats  # sw2's frames toward sw1
        rx = sw1.ports[1].stats  # counted where they arrive
        assert tx.pause_sent == rx.pause_received >= 1
        assert tx.resume_sent == rx.resume_received >= 1
        assert len(b.arrivals) == 8  # lossless through the storm


class TestHpccIntInsertion:
    def test_data_gets_int_record(self, sim):
        a, sw, b = chain(sim, SwitchConfig(int_mode=IntMode.HPCC))
        a.ports[0].enqueue(data())
        sim.run()
        pkt = b.arrivals[0][1]
        assert pkt.n_hops == 1
        rec = pkt.int_records[0]
        assert rec.bandwidth_gbps == 100.0
        # Forward-time stamping (DESIGN.md §11): the record describes the
        # egress queue as the frame joins it, so the first frame through an
        # idle switch sees zero bytes already transmitted on that egress.
        assert rec.tx_bytes == 0
        a.ports[0].enqueue(data(seq=1))
        sim.run()
        rec2 = b.arrivals[1][1].int_records[0]
        # The second frame's record counts the first one's wire bytes.
        assert rec2.tx_bytes == b.arrivals[0][1].size

    def test_int_grows_packet_size(self, sim):
        a, sw, b = chain(sim, SwitchConfig(int_mode=IntMode.HPCC))
        a.ports[0].enqueue(data(size=1000))
        sim.run()
        assert b.arrivals[0][1].size == 1000 + INT_RECORD_BYTES

    def test_acks_not_stamped_in_hpcc_mode(self, sim):
        a, sw, b = chain(sim, SwitchConfig(int_mode=IntMode.HPCC))
        b.ports[0].enqueue(ack())
        sim.run()
        assert a.arrivals[0][1].n_hops == 0


class TestFnccIntInsertion:
    def test_ack_gets_request_path_port_int(self, sim):
        """Alg. 1: the ACK entering on port 1 (from b) must carry the INT of
        the switch's *egress toward b* — the request-path queue."""
        a, sw, b = chain(sim, SwitchConfig(int_mode=IntMode.FNCC))
        # Build a standing queue toward b by pausing that egress.
        sw.ports[1].pause(0)
        for i in range(3):
            a.ports[0].enqueue(data(flow=i))
        sim.run(until=1_000_000)
        qlen_toward_b = sw.ports[1].qbytes_total
        assert qlen_toward_b > 0
        b.ports[0].enqueue(ack())
        sim.run(until=2_000_000)
        ack_back = [p for _, p in a.arrivals if p.kind == ACK][0]
        assert ack_back.n_hops == 1
        assert ack_back.int_records[0].qlen == qlen_toward_b

    def test_data_not_stamped_in_fncc_mode(self, sim):
        a, sw, b = chain(sim, SwitchConfig(int_mode=IntMode.FNCC))
        a.ports[0].enqueue(data())
        sim.run()
        assert b.arrivals[0][1].n_hops == 0

    def test_ack_size_grows_per_hop(self, sim):
        a, sw, b = chain(sim, SwitchConfig(int_mode=IntMode.FNCC))
        b.ports[0].enqueue(ack())
        sim.run()
        ack_back = [p for _, p in a.arrivals if p.kind == ACK][0]
        assert ack_back.size == ACK_SIZE + INT_RECORD_BYTES

    def test_snapshot_mode_reads_stale_table(self, sim):
        cfg = SwitchConfig(int_mode=IntMode.FNCC, int_table_refresh_ps=10_000_000)
        a, sw, b = chain(sim, cfg)
        sw.start()  # arms the refresh timer and takes the t=0 snapshot
        sw.ports[1].pause(0)
        for i in range(3):
            a.ports[0].enqueue(data(flow=i))
        sim.run(until=1_000_000)
        assert sw.ports[1].qbytes_total > 0
        b.ports[0].enqueue(ack())
        sim.run(until=2_000_000)
        ack_back = [p for _, p in a.arrivals if p.kind == ACK][0]
        # Snapshot was taken at t=0, before the queue built up.
        assert ack_back.int_records[0].qlen == 0


class TestRoccStamping:
    def test_ack_carries_min_fair_rate(self, sim):
        a, sw, b = chain(sim)

        class Ctrl:
            fair_rate_gbps = 37.5

        sw.port_controllers[1] = Ctrl()
        b.ports[0].enqueue(ack())
        sim.run()
        ack_back = [p for _, p in a.arrivals if p.kind == ACK][0]
        assert ack_back.rocc_rate_gbps == 37.5

    def test_stamping_keeps_minimum(self, sim):
        a, sw, b = chain(sim)

        class Ctrl:
            fair_rate_gbps = 80.0

        sw.port_controllers[1] = Ctrl()
        pkt = ack()
        pkt.rocc_rate_gbps = 20.0  # a more congested hop already stamped less
        b.ports[0].enqueue(pkt)
        sim.run()
        ack_back = [p for _, p in a.arrivals if p.kind == ACK][0]
        assert ack_back.rocc_rate_gbps == 20.0
