"""Host dispatch, flow lifecycle, and the FNCC N counter."""

import pytest

from repro.cc.base import CongestionControl
from repro.net.host import Host
from repro.net.packet import CNP, Packet
from repro.net.port import connect
from repro.transport.flow import Flow
from repro.units import MB, us


def pair(sim, rate=100.0, delay=0):
    """Two hosts wired directly (no switch): ids 0 and 1."""
    a = Host(sim, "a", host_id=0)
    b = Host(sim, "b", host_id=1)
    connect(sim, a, b, rate, delay)
    return a, b


def start(sim, a, b, flow):
    b.register_receiver(flow)
    return a.start_flow(flow, CongestionControl(), base_rtt_ps=us(10))


class TestFlowLifecycle:
    def test_single_flow_completes(self, sim):
        a, b = pair(sim)
        qp = start(sim, a, b, Flow(0, 0, 1, 100_000))
        sim.run()
        assert qp.finished
        assert b.receivers[0].completed
        assert qp.snd_una == 100_000

    def test_flow_starts_at_start_ps(self, sim):
        a, b = pair(sim)
        start(sim, a, b, Flow(0, 0, 1, 1000, start_ps=us(50)))
        sim.run(until=us(49))
        assert b.receivers[0].data_packets == 0
        sim.run()
        assert b.receivers[0].completed

    def test_fct_sink_called_once(self, sim):
        a, b = pair(sim)
        done = []
        b.fct_sink = done.append
        start(sim, a, b, Flow(0, 0, 1, 50_000))
        sim.run()
        assert len(done) == 1
        assert done[0].flow.flow_id == 0

    def test_sender_done_sink(self, sim):
        a, b = pair(sim)
        done = []
        a.sender_done_sink = done.append
        start(sim, a, b, Flow(0, 0, 1, 1000))
        sim.run()
        assert len(done) == 1

    def test_bidirectional_flows(self, sim):
        a, b = pair(sim)
        start(sim, a, b, Flow(0, 0, 1, 200_000))
        b.register_receiver  # (flow 1 goes b -> a)
        a.register_receiver(Flow(1, 1, 0, 200_000))
        b.start_flow(Flow(1, 1, 0, 200_000), CongestionControl(), base_rtt_ps=us(10))
        sim.run()
        assert b.receivers[0].completed and a.receivers[1].completed


class TestValidation:
    def test_wrong_source_rejected(self, sim):
        a, b = pair(sim)
        with pytest.raises(ValueError):
            a.start_flow(Flow(0, 1, 0, 1000), CongestionControl(), us(10))

    def test_wrong_destination_rejected(self, sim):
        a, b = pair(sim)
        with pytest.raises(ValueError):
            b.register_receiver(Flow(0, 1, 0, 1000))

    def test_duplicate_flow_id_rejected(self, sim):
        a, b = pair(sim)
        start(sim, a, b, Flow(0, 0, 1, 1000))
        with pytest.raises(ValueError):
            a.start_flow(Flow(0, 0, 1, 1000), CongestionControl(), us(10))

    def test_data_for_unknown_flow_raises(self, sim):
        a, b = pair(sim)
        from repro.net.packet import DATA

        a.ports[0].enqueue(Packet(DATA, flow_id=99, src=0, dst=1, size=100, payload=52))
        with pytest.raises(RuntimeError):
            sim.run()

    def test_ack_for_unknown_flow_ignored(self, sim):
        from repro.net.packet import ACK

        a, b = pair(sim)
        b.ports[0].enqueue(Packet(ACK, flow_id=99, src=1, dst=0, size=64))
        sim.run()  # no exception

    def test_cnp_dispatch(self, sim):
        a, b = pair(sim)
        hits = []

        class Cc(CongestionControl):
            def on_cnp(self, qp):
                hits.append(1)

        flow = Flow(0, 0, 1, 10 * MB)
        b.register_receiver(flow)
        a.start_flow(flow, Cc(), us(10))
        b.ports[0].enqueue(Packet(CNP, flow_id=0, src=1, dst=0, size=64))
        sim.run(until=us(1))
        assert hits == [1]


class TestConcurrentFlowCount:
    def test_n_counts_only_flows_with_data(self, sim):
        a, b = pair(sim)
        assert b.active_inbound_flows() == 1  # floor of 1
        f0 = Flow(0, 0, 1, 5 * MB)
        f1 = Flow(1, 0, 1, 5 * MB, start_ps=us(100))
        b.register_receiver(f0)
        b.register_receiver(f1)
        a.start_flow(f0, CongestionControl(), us(10))
        a.start_flow(f1, CongestionControl(), us(10))
        sim.run(until=us(50))
        assert b._active_inbound == 1  # only f0 has delivered packets
        sim.run(until=us(150))
        assert b._active_inbound == 2

    def test_n_decrements_on_completion(self, sim):
        a, b = pair(sim)
        f = Flow(0, 0, 1, 10_000)
        b.register_receiver(f)
        a.start_flow(f, CongestionControl(), us(10))
        sim.run()
        assert b._active_inbound == 0
        assert b.active_inbound_flows() == 1  # floor
