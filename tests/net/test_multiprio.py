"""Multi-priority (multi-VL) behaviour: strict priority service and
per-priority PFC — the machinery §5's "same service level" setting turns
off, exercised here to prove it exists and composes."""

import pytest

from repro.net.node import Node
from repro.net.packet import DATA, PAUSE, RESUME, Packet
from repro.net.port import connect
from repro.net.switch import Switch, SwitchConfig
from repro.units import KB, serialization_ps


class Endpoint(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.arrivals = []

    def receive(self, pkt, in_port):
        self.arrivals.append((self.sim.now, pkt))


def wire_direct(sim, n_prio=2):
    a, b = Endpoint(sim, "a"), Endpoint(sim, "b")
    pa, pb = connect(sim, a, b, 100.0, 0, n_prio=n_prio)
    return a, b, pa, pb


def data(prio, flow=0, size=1518):
    return Packet(DATA, flow_id=flow, src=0, dst=1, size=size, payload=size - 48, priority=prio)


class TestStrictPriority:
    def test_priority_zero_served_first(self, sim):
        a, b, pa, pb = wire_direct(sim)
        pa.pause(0)
        pa.pause(1)
        # Queue low-prio first, then high-prio; unpause high first so the
        # scheduler has both available when service restarts.
        pa.enqueue(data(1, flow=10))
        pa.enqueue(data(0, flow=20))
        pa.resume(0)
        pa.resume(1)
        sim.run()
        order = [p.flow_id for _, p in b.arrivals]
        assert order == [20, 10]

    def test_per_priority_byte_accounting(self, sim):
        a, b, pa, pb = wire_direct(sim)
        pa.pause(0)
        pa.pause(1)
        pa.enqueue(data(0))
        pa.enqueue(data(1))
        pa.enqueue(data(1))
        assert pa.qbytes[0] == 1518
        assert pa.qbytes[1] == 2 * 1518
        assert pa.qbytes_total == 3 * 1518

    def test_pausing_one_priority_leaves_other_flowing(self, sim):
        a, b, pa, pb = wire_direct(sim)
        pa.pause(0)
        pa.enqueue(data(0, flow=1))
        pa.enqueue(data(1, flow=2))
        sim.run(until=serialization_ps(1518, 100.0) * 4)
        assert [p.flow_id for _, p in b.arrivals] == [2]
        pa.resume(0)
        sim.run()
        assert len(b.arrivals) == 2


class TestPerPriorityPfc:
    def chain(self, sim):
        cfg = SwitchConfig(
            pfc_enabled=True, pfc_xoff=4 * KB, pfc_xon=1 * KB, n_prio=2
        )
        sw = Switch(sim, "sw", cfg)
        a, b = Endpoint(sim, "a"), Endpoint(sim, "b")
        connect(sim, a, sw, 100.0, 0, n_prio=2)
        connect(sim, sw, b, 100.0, 0, n_prio=2)
        sw.router = lambda s, pkt: 1 if pkt.dst == 1 else 0
        return a, sw, b

    def test_pause_names_the_congested_priority(self, sim):
        a, sw, b = self.chain(sim)
        sw.ports[1].pause(1)  # block only priority 1 toward b
        for i in range(6):
            a.ports[0].enqueue(data(1, flow=i))
        sim.run(until=10_000_000)
        pauses = [p for _, p in a.arrivals if p.kind == PAUSE]
        assert pauses and all(p.pause_prio == 1 for p in pauses)

    def test_uncongested_priority_not_paused(self, sim):
        a, sw, b = self.chain(sim)
        sw.ports[1].pause(1)
        for i in range(6):
            a.ports[0].enqueue(data(1, flow=i))
        sim.run(until=10_000_000)
        # Priority 0 still flows end to end.
        a.ports[0].enqueue(data(0, flow=99))
        sim.run(until=20_000_000)
        assert any(p.flow_id == 99 for _, p in b.arrivals)

    def test_resume_per_priority(self, sim):
        a, sw, b = self.chain(sim)
        sw.ports[1].pause(1)
        for i in range(6):
            a.ports[0].enqueue(data(1, flow=i))
        sim.run(until=5_000_000)
        sw.ports[1].resume(1)
        sim.run()
        resumes = [p for _, p in a.arrivals if p.kind == RESUME]
        assert resumes and all(p.pause_prio == 1 for p in resumes)
        delivered = [p for _, p in b.arrivals if p.kind == DATA]
        assert len(delivered) == 6
