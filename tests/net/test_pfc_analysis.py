"""PFC deadlock (cyclic buffer dependency) analysis."""

import pytest

from repro.net.pfc_analysis import (
    all_pairs_paths,
    buffer_dependency_graph,
    find_deadlock_cycles,
    routing_is_deadlock_free,
)
from repro.sim.engine import Simulator
from repro.topo.dumbbell import dumbbell
from repro.topo.fattree import fattree
from repro.topo.jellyfish import jellyfish


class TestCbdGraph:
    def test_linear_path_is_acyclic(self):
        paths = [["h0", "s0", "s1", "h1"]]
        assert routing_is_deadlock_free(paths)

    def test_classic_ring_deadlocks(self):
        """The textbook CBD: three flows chasing each other around a ring."""
        paths = [
            ["a", "s0", "s1", "s2", "b"],
            ["c", "s1", "s2", "s0", "d"],
            ["e", "s2", "s0", "s1", "f"],
        ]
        assert not routing_is_deadlock_free(paths)
        cycles = find_deadlock_cycles(paths)
        assert len(cycles) >= 1
        # The cycle is among the inter-switch buffers.
        nodes = {n for cyc in cycles for n in cyc}
        assert ("s0", "s1", 0) in nodes

    def test_two_flows_on_ring_no_cycle(self):
        paths = [
            ["a", "s0", "s1", "s2", "b"],
            ["c", "s1", "s2", "s0", "d"],
        ]
        assert routing_is_deadlock_free(paths)

    def test_graph_edges_follow_consecutive_hops(self):
        g = buffer_dependency_graph([["h", "x", "y", "z", "r"]])
        assert g.has_edge(("h", "x", 0), ("x", "y", 0))
        assert g.has_edge(("x", "y", 0), ("y", "z", 0))
        assert not g.has_edge(("x", "y", 0), ("z", "r", 0))

    def test_short_path_rejected(self):
        with pytest.raises(ValueError):
            buffer_dependency_graph([["a"]])

    def test_single_hop_path_adds_node_only(self):
        g = buffer_dependency_graph([["a", "b"]])
        assert ("a", "b", 0) in g.nodes
        assert g.number_of_edges() == 0


class TestRealTopologies:
    def test_dumbbell_routing_deadlock_free(self):
        topo = dumbbell(Simulator(), n_senders=3)
        assert routing_is_deadlock_free(all_pairs_paths(topo))

    def test_fattree_updown_ecmp_deadlock_free(self):
        """Up-down routing never turns down-then-up, so no CBD — the reason
        fat-trees tolerate PFC."""
        topo = fattree(Simulator(), k=4)
        assert routing_is_deadlock_free(all_pairs_paths(topo))

    def test_jellyfish_per_tree_classes_deadlock_free(self):
        """Observation 2 / TCP-Bolt: with one PFC priority class per
        spanning tree, a random graph is deadlock-free — and the same
        paths CAN deadlock if all trees share one class (which is exactly
        why TCP-Bolt separates them)."""
        from repro.net.pfc_analysis import all_pairs_paths_with_tree_classes

        topo = jellyfish(
            Simulator(), n_switches=10, switch_degree=4, hosts_per_switch=1
        )
        paths, classes = all_pairs_paths_with_tree_classes(topo)
        assert routing_is_deadlock_free(paths, classes)

    def test_shared_class_across_trees_can_deadlock(self):
        from repro.net.pfc_analysis import all_pairs_paths_with_tree_classes

        topo = jellyfish(
            Simulator(), n_switches=10, switch_degree=4, hosts_per_switch=1
        )
        paths, _ = all_pairs_paths_with_tree_classes(topo)
        # All trees squeezed into one lossless class: cycles appear.
        assert not routing_is_deadlock_free(paths)

    def test_classes_must_align(self):
        with pytest.raises(ValueError):
            buffer_dependency_graph([["a", "b", "c"]], classes=[0, 1])

    def test_class_isolation_breaks_textbook_ring(self):
        ring = [
            ["a", "s0", "s1", "s2", "b"],
            ["c", "s1", "s2", "s0", "d"],
            ["e", "s2", "s0", "s1", "f"],
        ]
        assert not routing_is_deadlock_free(ring)
        assert routing_is_deadlock_free(ring, classes=[0, 1, 2])

    def test_non_tree_routed_topo_rejected(self):
        from repro.net.pfc_analysis import all_pairs_paths_with_tree_classes

        topo = dumbbell(Simulator(), n_senders=2)
        with pytest.raises(ValueError):
            all_pairs_paths_with_tree_classes(topo)
