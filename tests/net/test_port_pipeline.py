"""Regression tests for the arithmetic single-event link pipeline and the
Switch.new_port n_prio contract."""

import pytest

from repro.net.node import Node
from repro.net.packet import DATA, PAUSE, Packet, PacketPool
from repro.net.port import connect
from repro.net.switch import Switch, SwitchConfig
from repro.units import serialization_ps


class Sink(Node):
    def __init__(self, sim, name="sink"):
        super().__init__(sim, name)
        self.arrivals = []

    def receive(self, pkt, in_port):
        self.arrivals.append((self.sim.now, pkt))


def wire(sim, rate=100.0, delay=0):
    a, b = Sink(sim, "a"), Sink(sim, "b")
    pa, pb = connect(sim, a, b, rate, delay)
    return a, b, pa, pb


def data(size=1518, prio=0, flow=0):
    return Packet(DATA, flow_id=flow, src=0, dst=1, size=size, payload=size - 48, priority=prio)


class TestSwitchNewPortPrio:
    """Satellite fix: new_port used to silently ignore its n_prio arg."""

    def test_default_uses_config_n_prio(self, sim):
        sw = Switch(sim, "sw", SwitchConfig(n_prio=4))
        port = sw.new_port(100.0, 0)
        assert port.n_prio == 4

    def test_matching_override_accepted(self, sim):
        sw = Switch(sim, "sw", SwitchConfig(n_prio=4))
        port = sw.new_port(100.0, 0, n_prio=4)
        assert port.n_prio == 4

    def test_conflicting_override_raises(self, sim):
        sw = Switch(sim, "sw", SwitchConfig(n_prio=4))
        with pytest.raises(ValueError, match="n_prio"):
            sw.new_port(100.0, 0, n_prio=2)

    def test_connect_mismatch_detected(self, sim):
        """connect(n_prio=...) against a switch with a different config no
        longer silently builds mismatched PFC state."""
        sw = Switch(sim, "sw", SwitchConfig(n_prio=2))
        other = Sink(sim)
        with pytest.raises(ValueError):
            connect(sim, other, sw, 100.0, 0, n_prio=3)

    def test_plain_node_default_is_one(self, sim):
        n = Sink(sim)
        assert n.new_port(100.0, 0).n_prio == 1


class TestSingleEventPipeline:
    def test_one_dispatch_per_frame_hop(self, sim):
        """The tentpole invariant: a frame-hop costs one scheduler event."""
        a, b, pa, pb = wire(sim)
        for i in range(10):
            pa.enqueue(data(flow=i))
        sim.run()
        assert len(b.arrivals) == 10
        assert sim.events_dispatched == 10

    def test_backlog_keeps_single_outstanding_event(self, sim):
        a, b, pa, pb = wire(sim)
        for i in range(50):
            pa.enqueue(data(flow=i))
        # Only the head delivery is armed; the rest are arithmetic.
        assert sim.queue_len() == 1
        sim.run()
        assert len(b.arrivals) == 50

    def test_pause_requeue_preserves_arrival_times(self, sim):
        """XOFF then immediate XON must not change the schedule."""
        a, b, pa, pb = wire(sim, delay=0)
        for i in range(5):
            pa.enqueue(data(flow=i))
        expected_last = 5 * serialization_ps(1518, 100.0)
        pa.pause(0)
        pa.resume(0)
        sim.run()
        assert [p.flow_id for _, p in b.arrivals] == [0, 1, 2, 3, 4]
        assert b.arrivals[-1][0] == expected_last

    def test_pause_midstream_shifts_tail_only(self, sim):
        ser = serialization_ps(1518, 100.0)
        a, b, pa, pb = wire(sim, delay=0)
        for i in range(3):
            pa.enqueue(data(flow=i))
        pa.pause(0)  # frame 0 in service completes; 1 and 2 re-queued
        sim.run(until=10 * ser)
        assert len(b.arrivals) == 1
        pa.resume(0)
        sim.run()
        assert [p.flow_id for _, p in b.arrivals] == [0, 1, 2]
        # Tail restarts at resume time, back-to-back.
        assert b.arrivals[2][0] - b.arrivals[1][0] == ser

    def test_control_frame_preempts_pending_commits(self, sim):
        ser = serialization_ps(1518, 100.0)
        a, b, pa, pb = wire(sim, delay=0)
        pa.enqueue(data(flow=0))
        pa.enqueue(data(flow=1))
        ctrl = Packet(PAUSE, size=64)
        pa.enqueue(ctrl)
        sim.run()
        kinds = [p.kind for _, p in b.arrivals]
        assert kinds == [DATA, PAUSE, DATA]
        # The control frame went on the wire right at the frame boundary.
        assert b.arrivals[1][0] == ser + serialization_ps(64, 100.0)

    def test_queue_backlog_lazy_accounting(self, sim):
        ser = serialization_ps(1518, 100.0)
        a, b, pa, pb = wire(sim)
        for i in range(4):
            pa.enqueue(data(flow=i))
        assert pa.qbytes_total == 3 * 1518  # head in service not counted
        sim.run(until=ser)
        assert pa.qbytes_total == 2 * 1518
        sim.run(until=2 * ser)
        assert pa.qbytes_total == 1518
        sim.run()
        assert pa.qbytes_total == 0


class TestBoundedCommitWindow:
    """The pause-storm fix: commits are bounded (K-frame lookahead) and
    lazy, so PFC transitions touch O(K) frames, never O(backlog)."""

    def test_pending_window_is_bounded(self, sim):
        a, b, pa, pb = wire(sim, delay=0)
        for i in range(200):
            pa.enqueue(data(flow=i))
        # Only the lookahead window is committed ahead of the serializer;
        # the rest of the backlog is parked in the priority queue.
        assert len(pa._acct) <= pa.commit_lookahead
        assert len(pa._inflight) <= pa.commit_lookahead + 1
        assert sim.queue_len() == 1  # still exactly one armed event
        sim.run()
        assert [p.flow_id for _, p in b.arrivals] == list(range(200))
        assert sim.events_dispatched == 200  # still 1 dispatch per frame

    def test_pause_resume_touch_window_not_backlog(self, sim):
        a, b, pa, pb = wire(sim, delay=0)
        for i in range(500):
            pa.enqueue(data(flow=i))
        pa.pause(0)
        # XOFF re-sequenced only the committed window: everything except
        # the in-service head is parked, nothing pending on the wire.
        assert len(pa._acct) == 0
        assert len(pa.queues[0]) == 499
        pa.resume(0)
        # XON re-committed only the window, not the whole backlog.
        assert len(pa._acct) <= pa.commit_lookahead
        sim.run()
        assert len(b.arrivals) == 500
        assert pa.qbytes_total == 0

    def test_deep_backlog_timing_matches_eager_schedule(self, sim):
        ser = serialization_ps(1518, 100.0)
        a, b, pa, pb = wire(sim, delay=0)
        for i in range(50):
            pa.enqueue(data(flow=i))
        sim.run()
        # Lazy commits start exactly at next_free_ps: back-to-back wire
        # occupancy, identical to the eager commit-at-enqueue schedule.
        assert [t for t, _ in b.arrivals] == [(i + 1) * ser for i in range(50)]

    def test_lookahead_is_a_pure_performance_knob(self):
        from repro.sim.engine import Simulator

        def run(k):
            sim = Simulator()
            a, b, pa, pb = wire(sim, delay=1000)
            pa.commit_lookahead = k
            for i in range(30):
                pa.enqueue(data(flow=i, prio=0))
            pa.pause(0)
            sim.run(until=5 * serialization_ps(1518, 100.0))
            pa.resume(0)
            sim.run()
            return [(t, p.flow_id) for t, p in b.arrivals]

        assert run(1) == run(3) == run(1 << 30)


class TestResumeGuard:
    """Satellite audit: resume() early-returns on an empty queue.  Safe
    because a paused class's frames can only wait in its own queue — these
    regressions pin the interleavings that would strand the transmitter
    if the guard were wrong."""

    def wire2(self, sim, delay=0):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        pa, pb = connect(sim, a, b, 100.0, delay, n_prio=2)
        return a, b, pa, pb

    def test_resume_with_other_priority_backlog_paused(self, sim):
        # Both classes paused, backlog only on prio 1.  XON for empty
        # prio 0 takes the early return with the transmitter fully idle;
        # prio 1's own XON must still restart it.
        a, b, pa, pb = self.wire2(sim)
        pa.pause(0)
        pa.pause(1)
        for i in range(5):
            pa.enqueue(data(flow=i, prio=1))
        pa.resume(0)  # empty queue: early return
        sim.run(until=1_000_000)
        assert b.arrivals == []  # correctly still paused
        pa.resume(1)
        sim.run()
        assert [p.flow_id for _, p in b.arrivals] == [0, 1, 2, 3, 4]

    def test_resume_with_other_priority_parked_behind_window(self, sim):
        # Unpaused prio-0 backlog parked behind a full commit window; a
        # spurious XON for empty prio 1 early-returns.  The armed delivery
        # event must keep topping the window up — nothing may strand.
        a, b, pa, pb = self.wire2(sim)
        for i in range(50):
            pa.enqueue(data(flow=i, prio=0))
        assert pa._uncommitted > 0  # backlog parked beyond the window
        pa.resume(1)  # empty queue: early return, commits nothing
        sim.run()
        assert len(b.arrivals) == 50

    def test_pause_resume_cycle_on_empty_queue_keeps_schedule(self, sim):
        ser = serialization_ps(1518, 100.0)
        a, b, pa, pb = self.wire2(sim)
        for i in range(4):
            pa.enqueue(data(flow=i, prio=0))
        pa.pause(1)
        pa.resume(1)  # no prio-1 frames anywhere: pure no-op
        sim.run()
        assert [t for t, _ in b.arrivals] == [(i + 1) * ser for i in range(4)]


class TestPacketPool:
    def test_acquire_reuses_released_packet(self):
        pool = PacketPool(enabled=True)
        p1 = pool.acquire(DATA, 1, 0, 1, 0, 1518, 1470, 0)
        p1.ecn = True
        p1.hops = 3
        pool.release(p1)
        p2 = pool.acquire(DATA, 2, 5, 6, 100, 64, 0, 0)
        assert p2 is p1  # recycled shell
        assert p2.flow_id == 2 and p2.seq == 100 and p2.size == 64
        assert p2.ecn is False and p2.hops == 0  # fully reset

    def test_release_drops_int_records_by_reference(self):
        pool = PacketPool(enabled=True)
        pkt = pool.acquire(DATA, 1, 0, 1, 0, 1518, 1470, 0)
        from repro.net.packet import INTRecord

        pkt.add_int(INTRecord(100.0, 1, 2, 3))
        records = pkt.int_records
        pool.release(pkt)
        assert pkt.int_records is None
        assert len(records) == 1  # aliased list itself untouched

    def test_disabled_pool_never_recycles(self):
        pool = PacketPool(enabled=False)
        pkt = pool.acquire(DATA, 1, 0, 1, 0, 1518, 1470, 0)
        pool.release(pkt)
        assert pool.acquire(DATA, 2, 0, 1, 0, 64, 0, 0) is not pkt

    def test_max_free_bounds_pool(self):
        pool = PacketPool(enabled=True, max_free=2)
        pkts = [pool.acquire(DATA, i, 0, 1, 0, 64, 0, 0) for i in range(5)]
        for p in pkts:
            pool.release(p)
        assert pool.recycled == 2
