"""Packet and INTRecord wire-format behaviour."""

from repro.net.packet import ACK, CNP, DATA, PAUSE, RESUME, INTRecord, Packet


class TestPacket:
    def test_defaults(self):
        p = Packet(DATA, flow_id=7, src=1, dst=2, seq=100, size=1518, payload=1470)
        assert p.kind == DATA
        assert not p.ecn and not p.ecn_echo
        assert p.int_records is None
        assert p.n_hops == 0
        assert p.hops == 0

    def test_add_int_accumulates_in_order(self):
        p = Packet(DATA)
        p.add_int(INTRecord(100.0, 1, 10, 0))
        p.add_int(INTRecord(100.0, 2, 20, 5))
        assert p.n_hops == 2
        assert [r.ts for r in p.int_records] == [1, 2]

    def test_control_detection(self):
        assert Packet(PAUSE).is_control()
        assert Packet(RESUME).is_control()
        assert not Packet(DATA).is_control()
        assert not Packet(ACK).is_control()
        assert not Packet(CNP).is_control()

    def test_repr_mentions_kind(self):
        assert "ACK" in repr(Packet(ACK, flow_id=3))


class TestINTRecord:
    def test_copy_is_independent(self):
        a = INTRecord(100.0, 5, 1000, 42)
        b = a.copy()
        b.qlen = 0
        assert a.qlen == 42

    def test_fields(self):
        r = INTRecord(400.0, 123, 456, 789)
        assert r.bandwidth_gbps == 400.0
        assert r.ts == 123
        assert r.tx_bytes == 456
        assert r.qlen == 789
