"""Port egress engine: serialization timing, FIFO order, pause, counters."""

import pytest

from repro.net.node import Node
from repro.net.packet import DATA, PAUSE, Packet
from repro.net.port import EcnConfig, connect
from repro.units import serialization_ps


class Sink(Node):
    """Records (time, packet) arrivals."""

    def __init__(self, sim, name="sink"):
        super().__init__(sim, name)
        self.arrivals = []

    def receive(self, pkt, in_port):
        self.arrivals.append((self.sim.now, pkt))


def wire(sim, rate=100.0, delay=1000):
    a, b = Sink(sim, "a"), Sink(sim, "b")
    pa, pb = connect(sim, a, b, rate, delay)
    return a, b, pa, pb


def data(size=1518, prio=0, flow=0):
    return Packet(DATA, flow_id=flow, src=0, dst=1, size=size, payload=size - 48, priority=prio)


class TestTiming:
    def test_arrival_time_is_ser_plus_prop(self, sim):
        a, b, pa, pb = wire(sim, rate=100.0, delay=1500_000)
        pa.enqueue(data(1518))
        sim.run()
        assert len(b.arrivals) == 1
        t, _ = b.arrivals[0]
        assert t == serialization_ps(1518, 100.0) + 1500_000

    def test_back_to_back_spaced_by_serialization(self, sim):
        a, b, pa, pb = wire(sim, rate=100.0, delay=0)
        pa.enqueue(data())
        pa.enqueue(data())
        sim.run()
        t0, t1 = b.arrivals[0][0], b.arrivals[1][0]
        assert t1 - t0 == serialization_ps(1518, 100.0)

    def test_rate_scales_serialization(self, sim):
        a, b, pa, pb = wire(sim, rate=400.0, delay=0)
        pa.enqueue(data())
        sim.run()
        assert b.arrivals[0][0] == serialization_ps(1518, 400.0)

    def test_fifo_order(self, sim):
        a, b, pa, pb = wire(sim)
        for i in range(5):
            pa.enqueue(data(flow=i))
        sim.run()
        assert [p.flow_id for _, p in b.arrivals] == [0, 1, 2, 3, 4]

    def test_full_duplex_is_independent(self, sim):
        a, b, pa, pb = wire(sim, delay=0)
        pa.enqueue(data())
        pb.enqueue(data())
        sim.run()
        assert len(a.arrivals) == 1 and len(b.arrivals) == 1
        assert a.arrivals[0][0] == b.arrivals[0][0]


class TestQueueAccounting:
    def test_qbytes_counts_waiting_only(self, sim):
        a, b, pa, pb = wire(sim)
        pa.enqueue(data())
        pa.enqueue(data())
        # First packet in service is no longer in the queue.
        assert pa.qbytes_total == 1518
        sim.run()
        assert pa.qbytes_total == 0

    def test_tx_bytes_accumulates(self, sim):
        a, b, pa, pb = wire(sim)
        for _ in range(3):
            pa.enqueue(data(1000))
        sim.run()
        assert pa.tx_bytes == 3000
        assert pa.stats.tx_packets == 3

    def test_rx_counters(self, sim):
        a, b, pa, pb = wire(sim)
        pa.enqueue(data(1000))
        sim.run()
        assert pb.stats.rx_packets == 1
        assert pb.stats.rx_bytes == 1000

    def test_max_qlen_high_watermark(self, sim):
        a, b, pa, pb = wire(sim)
        for _ in range(4):
            pa.enqueue(data(1518))
        assert pa.stats.max_qlen == 3 * 1518
        sim.run()


class TestPause:
    def test_paused_priority_not_served(self, sim):
        a, b, pa, pb = wire(sim)
        pa.pause(0)
        pa.enqueue(data())
        sim.run(until=10_000_000)
        assert b.arrivals == []

    def test_resume_restarts(self, sim):
        a, b, pa, pb = wire(sim)
        pa.pause(0)
        pa.enqueue(data())
        sim.run(until=1_000_000)
        pa.resume(0)
        sim.run()
        assert len(b.arrivals) == 1

    def test_inflight_frame_completes_despite_pause(self, sim):
        a, b, pa, pb = wire(sim, delay=0)
        pa.enqueue(data())
        pa.enqueue(data(flow=1))
        pa.pause(0)  # first frame already serializing
        sim.run(until=serialization_ps(1518, 100.0))
        assert len(b.arrivals) == 1
        assert b.arrivals[0][1].flow_id == 0

    def test_control_frames_bypass_pause(self, sim):
        a, b, pa, pb = wire(sim, delay=0)
        pa.pause(0)
        frame = Packet(PAUSE, size=64)
        pa.enqueue(frame)
        sim.run()
        assert len(b.arrivals) == 1

    def test_control_frames_jump_data_queue(self, sim):
        a, b, pa, pb = wire(sim, delay=0)
        pa.enqueue(data())  # goes into service
        pa.enqueue(data(flow=1))  # waits
        pa.enqueue(Packet(PAUSE, size=64))
        sim.run()
        kinds = [p.kind for _, p in b.arrivals]
        assert kinds[1] == PAUSE  # control served before the queued data


class TestEcnMarking:
    def test_marks_above_kmax(self, sim):
        import random

        a, b, pa, pb = wire(sim)
        pa.set_ecn(EcnConfig(kmin=0, kmax=1, pmax=1.0), random.Random(1))
        pa.enqueue(data())  # enters service; queue empty at mark time
        pa.enqueue(data(flow=1))  # queue is 0 bytes when enqueued? (first waits)
        pa.enqueue(data(flow=2))  # queue above kmax -> marked
        sim.run()
        assert b.arrivals[-1][1].ecn is True

    def test_no_marks_below_kmin(self, sim):
        import random

        a, b, pa, pb = wire(sim)
        pa.set_ecn(EcnConfig(kmin=10**9, kmax=2 * 10**9, pmax=1.0), random.Random(1))
        for i in range(10):
            pa.enqueue(data(flow=i))
        sim.run()
        assert not any(p.ecn for _, p in b.arrivals)

    def test_ecn_requires_rng(self, sim):
        a, b, pa, pb = wire(sim)
        with pytest.raises(ValueError):
            pa.set_ecn(EcnConfig(0, 1, 1.0), None)

    def test_mark_probability_shape(self):
        cfg = EcnConfig(kmin=100, kmax=200, pmax=0.5)
        assert cfg.mark_probability(50) == 0.0
        assert cfg.mark_probability(100) == 0.0
        assert cfg.mark_probability(150) == pytest.approx(0.25)
        assert cfg.mark_probability(250) == 1.0

    def test_ecn_config_validation(self):
        with pytest.raises(ValueError):
            EcnConfig(kmin=10, kmax=5, pmax=0.5)
        with pytest.raises(ValueError):
            EcnConfig(kmin=0, kmax=5, pmax=1.5)


class TestWiring:
    def test_unwired_port_rejects(self, sim):
        n = Sink(sim)
        p = n.new_port(100.0, 0)
        with pytest.raises(RuntimeError):
            p.enqueue(data())

    def test_port_validation(self, sim):
        n = Sink(sim)
        with pytest.raises(ValueError):
            n.new_port(0, 0)
        with pytest.raises(ValueError):
            n.new_port(100.0, -5)
