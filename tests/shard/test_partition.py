"""Partition planner, lookahead alignment, and frame-message units."""

import pytest

from repro.experiments.common import run_microbench
from repro.net.packet import DATA, INTRecord, Packet
from repro.shard import (
    PartitionError,
    aligned_window,
    decode_frame,
    dumbbell_plan,
    encode_frame,
    fattree_plan,
    plan_partition,
)
from repro.units import MS, us


@pytest.fixture(scope="module")
def dumbbell_topo():
    return run_microbench("fncc", duration_us=0.0, n_switches=3).topo


def test_dumbbell_plan_cuts_chain_only(dumbbell_topo):
    plan = dumbbell_plan(dumbbell_topo, 2)
    assert plan.n_shards == 2
    assert len(plan.cuts) == 1
    (cut,) = plan.cuts
    assert cut.a.startswith("sw") and cut.b.startswith("sw")
    assert plan.lookahead_ps == us(1.5)
    # Hosts follow their attachment switch.
    assert plan.owner["sender0"] == plan.owner["sw0"]
    assert plan.owner["receiver0"] == plan.owner["sw2"]


def test_dumbbell_plan_three_shards(dumbbell_topo):
    plan = dumbbell_plan(dumbbell_topo, 3)
    assert plan.n_shards == 3
    assert len(plan.cuts) == 2
    assert sorted({c.owner_a for c in plan.cuts} | {c.owner_b for c in plan.cuts}) == [
        0,
        1,
        2,
    ]


def test_host_switch_cut_rejected(dumbbell_topo):
    owner = dumbbell_plan(dumbbell_topo, 2).owner.copy()
    # Strand a host on the wrong side of its edge switch.
    owner["receiver0"] = 0
    with pytest.raises(PartitionError, match="switch--switch"):
        plan_partition(dumbbell_topo, owner)


def test_unassigned_node_rejected(dumbbell_topo):
    owner = dumbbell_plan(dumbbell_topo, 2).owner.copy()
    del owner["sender0"]
    with pytest.raises(PartitionError, match="without a shard"):
        plan_partition(dumbbell_topo, owner)


def test_cutless_map_rejected(dumbbell_topo):
    owner = {n: 0 for n in dumbbell_plan(dumbbell_topo, 2).owner}
    with pytest.raises(PartitionError, match="cuts no links"):
        plan_partition(dumbbell_topo, owner, n_shards=1)


def test_fattree_plan_cuts_at_core():
    from repro.experiments.fct_experiment import build_fct_fabric

    fab = build_fct_fabric("fncc", k=4, n_flows=1, scale=0.1)
    plan = fattree_plan(fab.topo, 2)
    assert plan.n_shards == 2
    for cut in plan.cuts:
        names = {cut.a.split("_")[0], cut.b.split("_")[0]}
        assert names == {"agg", "core"}
    # A pod never straddles shards.
    for sw in fab.topo.switches:
        if sw.name.startswith(("tor_", "agg_")):
            pod = sw.name.split("_")[1]
            assert plan.owner[sw.name] == plan.owner[f"agg_{pod}_0"]
    with pytest.raises(PartitionError, match="divide the pod count"):
        fattree_plan(fab.topo, 3)


def test_aligned_window_divides_chunk():
    w = aligned_window(us(1.5), MS // 2)
    assert w <= us(1.5)
    assert (MS // 2) % w == 0
    assert aligned_window(us(1.5)) == us(1.5)
    assert aligned_window(MS, MS // 2) == MS // 2
    with pytest.raises(ValueError):
        aligned_window(0)


def test_frame_roundtrip_preserves_every_slot():
    pkt = Packet(DATA, flow_id=7, src=1, dst=2, seq=3, size=1104, payload=1000,
                 priority=1)
    pkt.ecn = True
    pkt.ecn_echo = True
    pkt.int_records = [INTRecord(100.0, 123, 456, 789)]
    pkt.n_flows = 4
    pkt.rocc_rate_gbps = 25.0
    pkt.last = True
    pkt.sent_ts = 42
    pkt.echo_sent_ts = 41
    pkt.fncc_in_port = 5
    pkt.pause_prio = 1
    pkt.hops = 3
    pkt.lb_tag = 9
    pkt.lb_tail = 8
    out = decode_frame(encode_frame(pkt))
    for slot in (
        "kind", "flow_id", "src", "dst", "seq", "size", "payload", "priority",
        "ecn", "ecn_echo", "n_flows", "rocc_rate_gbps", "last", "sent_ts",
        "echo_sent_ts", "fncc_in_port", "pause_prio", "hops", "lb_tag",
        "lb_tail",
    ):
        assert getattr(out, slot) == getattr(pkt, slot), slot
    (rec,) = out.int_records
    assert (rec.bandwidth_gbps, rec.ts, rec.tx_bytes, rec.qlen) == (
        100.0, 123, 456, 789,
    )
    # The rebuilt record is a fresh object — no aliasing across the cut.
    assert rec is not pkt.int_records[0]
