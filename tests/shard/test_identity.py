"""Byte-identity: sharded runs reproduce the serial engine exactly.

The acceptance bar for the whole shard subsystem (DESIGN.md §11): FCT
fingerprints, every PortStats counter and the PFC ledger must match the
serial engine byte for byte, in-process AND process-backed, trains on
AND off, including runs where PFC PAUSE/RESUME frames cross the cut.

``train_frames`` is masked on the two cut ports only: a boundary hop
cannot fuse (the stub peer fails the train classifier's switch check, by
design), while every interior port must still fuse identically.
``events_dispatched`` is never compared — injection bounce events and
the unowned copies' monitor ticks make per-shard totals legitimately
differ while all physical counters stay identical.
"""

import json
import os

import pytest

import repro.sim.engine as engine
from repro.experiments.common import run_microbench
from repro.experiments.fct_experiment import run_fct_experiment
from repro.faults.audit import FaultAuditor
from repro.shard import ShardCrash, run_sharded_fct, run_sharded_microbench
from repro.shard.builders import portstats_rows
from repro.units import KB


@pytest.fixture(autouse=True)
def _restore_trains_flag():
    saved = engine.TRAINS
    yield
    engine.TRAINS = saved


def serial_rows(result):
    return sorted(
        tuple(r)
        for r in portstats_rows(list(result.topo.hosts) + list(result.topo.switches))
    )


def cut_ports(topo, plan):
    out = set()
    for cut in plan.cuts:
        ports = topo.graph.edges[cut.a, cut.b]["ports"]
        out.add((cut.a, ports[cut.a]))
        out.add((cut.b, ports[cut.b]))
    return out


def masked(rows, cuts):
    return [r[:-1] + ((0,) if (r[0], r[1]) in cuts else (r[-1],)) for r in rows]


def serial_series(result):
    return (
        result.pause_frames,
        tuple(result.queue.times),
        tuple(result.queue.values),
        tuple(
            (fid, tuple(s.times), tuple(s.values))
            for fid, s in sorted(result.rates.items())
        ),
        tuple(result.utilization.times),
        tuple(result.utilization.values),
    )


def assert_microbench_identical(cc, process=False, trains=None, **kw):
    if trains is not None:
        engine.TRAINS = trains
    serial = run_microbench(cc, **kw)
    sharded = run_sharded_microbench(
        cc, n_shards=2, process=process, trains=trains, **kw
    )
    cuts = cut_ports(serial.topo, sharded.plan)
    assert masked(serial_rows(serial), cuts) == masked(sharded.portstats, cuts)
    assert serial_series(serial) == sharded.series_fingerprint()
    assert FaultAuditor.audit_merged(sharded.payloads, quiescent=False) == []
    return serial, sharded


def test_dumbbell_identity_trains_on():
    serial, sharded = assert_microbench_identical("fncc", duration_us=700.0)
    # Engagement guard: interior hops really fused on both sides.
    interior = [r[-1] for r in sharded.portstats]
    assert sum(interior) > 0


def test_dumbbell_identity_trains_off():
    assert_microbench_identical("fncc", trains=False, duration_us=400.0)


def test_dumbbell_identity_hpcc_int_across_cut():
    """HPCC's per-hop INT stamps must survive the frame-message hop."""
    assert_microbench_identical("hpcc", duration_us=700.0)


def test_pfc_storm_across_boundary():
    """A tight XOFF forces PAUSE/RESUME frames across the cut; the wire
    schedule and the merged ledger must still match serial exactly."""
    serial, sharded = assert_microbench_identical(
        "fncc", duration_us=700.0, pfc_xoff=50 * KB
    )
    assert serial.pause_frames > 0
    assert sharded.pfc["pause_sent"] == sharded.pfc["pause_received"] > 0
    assert sharded.pfc["resume_sent"] == sharded.pfc["resume_received"]


def test_dumbbell_identity_process_backed():
    """The spawn-worker runtime is observably identical to in-process."""
    assert_microbench_identical("fncc", process=True, duration_us=400.0)


@pytest.mark.parametrize("process", [False, True], ids=["inproc", "process"])
def test_fattree_fct_identity(process):
    kw = dict(workload="websearch", k=4, load=0.5, n_flows=40, scale=0.1, seed=1)
    serial = run_fct_experiment("fncc", **kw)
    sharded = run_sharded_fct("fncc", shards=2, process=process, **kw)
    assert serial.fct_fingerprint() == sharded.fct_fingerprint()
    assert sharded.completed == serial.collector.completed()
    cuts = cut_ports(serial.topo, sharded.plan)
    assert masked(serial_rows(serial), cuts) == masked(sharded.portstats, cuts)
    # The run drained: the merged snapshot must pass the quiescence audit.
    assert FaultAuditor.audit_merged(sharded.payloads, quiescent=True) == []
    # The rebuilt table holds the identical slowdown multiset per bin;
    # stats are compared against a serial table rebuilt in the same
    # flow-id order (the run's own table accumulated in completion order,
    # so its float reductions differ in the last ulp).
    table = sharded.slowdown_table()
    from repro.metrics.fct import SlowdownTable

    expected = SlowdownTable(serial.table.bins)
    for rec in sorted(serial.collector.records, key=lambda r: r.flow.flow_id):
        expected.add(rec.flow.size_bytes, rec.slowdown)
    for b in sharded.bins:
        assert sorted(table.by_bin[b]) == sorted(serial.table.by_bin[b])
        assert table.stat(b, "average") == expected.stat(b, "average")


def test_audit_merged_flags_imbalance():
    payloads = {
        0: {
            "pfc": {"pause_sent": 3, "pause_received": 0,
                    "resume_sent": 0, "resume_received": 0},
            "boundary": {"exported": 5, "injected": 5, "in_flight": 0},
        },
    }
    violations = FaultAuditor.audit_merged(payloads, quiescent=True)
    assert any("ledger imbalance" in v for v in violations)
    # Non-quiescent: a gap larger than the boundary residue is still a bug.
    assert FaultAuditor.audit_merged(payloads, quiescent=False) != []
    payloads[0]["boundary"]["in_flight"] = 3
    assert FaultAuditor.audit_merged(payloads, quiescent=False) == []


def test_killed_shard_inprocess_dumps_all_survivors(tmp_path):
    with pytest.raises(ShardCrash) as exc_info:
        run_sharded_microbench(
            "fncc", n_shards=2, duration_us=400.0,
            crash_at_us=150.0, crash_shard=1,
        )
    crash = exc_info.value
    assert crash.shard_id == 1
    assert "ShardBomb" in crash.reason
    assert set(crash.dumps) == {0, 1}
    for sid, path in crash.dumps.items():
        with open(path) as fh:
            doc = json.load(fh)
        assert doc, f"empty flight dump for shard {sid}"


def test_killed_shard_process_dumps_survive_dead_worker(tmp_path):
    """A dead worker process must leave its own dump on disk and the
    survivors must still produce theirs."""
    with pytest.raises(ShardCrash) as exc_info:
        run_sharded_microbench(
            "fncc", n_shards=2, process=True, duration_us=400.0,
            dump_dir=str(tmp_path), crash_at_us=150.0, crash_shard=0,
        )
    crash = exc_info.value
    assert crash.shard_id == 0
    assert set(crash.dumps) == {0, 1}
    for sid in (0, 1):
        path = os.path.join(str(tmp_path), f"shard{sid}-flight.json")
        assert os.path.isfile(path)
        with open(path) as fh:
            json.load(fh)


def test_chrome_trace_one_pid_per_shard(tmp_path):
    trace_path = str(tmp_path / "shards.json")
    run_sharded_microbench(
        "fncc", n_shards=2, duration_us=400.0,
        trace_path=trace_path, pfc_xoff=50 * KB,
    )
    with open(trace_path) as fh:
        events = json.load(fh)["traceEvents"]
    pids = {ev["pid"] for ev in events}
    labels = {
        ev["args"]["name"]
        for ev in events
        if ev.get("ph") == "M" and ev.get("name") == "process_name"
    }
    assert len(pids) == 2
    assert labels == {"shard0", "shard1"}
