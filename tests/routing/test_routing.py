"""Routing: table computation, ECMP selection, and — the FNCC-critical
property — path symmetry between data packets and their ACKs."""

import networkx as nx
import pytest

from repro.net.packet import ACK, DATA, Packet
from repro.routing.ecmp import install_ecmp
from repro.routing.spanning_tree import build_trees, install_spanning_trees
from repro.routing.tables import build_graph_tables
from repro.sim.engine import Simulator
from repro.topo.dumbbell import dumbbell
from repro.topo.fattree import fattree
from repro.topo.jellyfish import jellyfish


def trace_path(topo, src, dst, flow_id, kind=DATA):
    """Follow routing decisions switch by switch; returns switch names."""
    pkt = Packet(kind, flow_id=flow_id, src=src, dst=dst)
    # Entry switch: the switch adjacent to the source host.
    host = topo.hosts[src].name
    current = next(iter(topo.graph[host]))
    names = []
    guard = 0
    while True:
        guard += 1
        assert guard < 32, "routing loop"
        sw = topo.node(current)
        names.append(current)
        out_port = sw.router(sw, pkt)
        peer = sw.ports[out_port].peer.node
        if peer.name == topo.hosts[dst].name:
            return names
        current = peer.name


class TestTables:
    def test_dumbbell_next_hops(self, sim):
        topo = dumbbell(sim, n_senders=2, n_switches=3)
        rt = build_graph_tables(topo)
        recv = topo.hosts[-1].host_id
        # sw0 must route to the receiver via sw1 (single path).
        ports = rt.ports_for("sw0", recv)
        assert len(ports) == 1

    def test_missing_route_raises(self, sim):
        topo = dumbbell(sim)
        rt = build_graph_tables(topo)
        with pytest.raises(KeyError):
            rt.ports_for("sw0", 999)
        with pytest.raises(KeyError):
            rt.ports_for("nonexistent", 0)

    def test_fattree_has_equal_cost_choices(self, sim):
        topo = fattree(sim, k=4)
        rt = build_graph_tables(topo)
        # A ToR reaching a remote pod has k/2 = 2 uplink choices.
        remote_host = topo.node("h_3_0_0").host_id
        assert len(rt.ports_for("tor_0_0", remote_host)) == 2


class TestEcmp:
    def test_same_flow_same_path(self, sim):
        topo = fattree(sim, k=4)
        a = topo.node("h_0_0_0").host_id
        b = topo.node("h_2_1_0").host_id
        p1 = trace_path(topo, a, b, flow_id=7)
        p2 = trace_path(topo, a, b, flow_id=7)
        assert p1 == p2

    def test_different_flows_spread(self, sim):
        topo = fattree(sim, k=4)
        a = topo.node("h_0_0_0").host_id
        b = topo.node("h_2_1_0").host_id
        paths = {tuple(trace_path(topo, a, b, flow_id=f)) for f in range(32)}
        assert len(paths) > 1  # load is actually balanced

    def test_symmetric_ack_path_fattree(self, sim):
        """Observation 2: the ACK must traverse the same switches in reverse."""
        topo = fattree(sim, k=4)
        a = topo.node("h_0_0_0").host_id
        b = topo.node("h_2_1_0").host_id
        for flow_id in range(24):
            data_path = trace_path(topo, a, b, flow_id, kind=DATA)
            ack_path = trace_path(topo, b, a, flow_id, kind=ACK)
            assert ack_path == data_path[::-1], f"flow {flow_id} asymmetric"

    def test_asymmetric_mode_breaks_symmetry(self, sim):
        topo = fattree(sim, k=4, symmetric_ecmp=False)
        a = topo.node("h_0_0_0").host_id
        b = topo.node("h_2_1_0").host_id
        mismatches = 0
        for flow_id in range(32):
            data_path = trace_path(topo, a, b, flow_id)
            ack_path = trace_path(topo, b, a, flow_id, kind=ACK)
            if ack_path != data_path[::-1]:
                mismatches += 1
        assert mismatches > 0

    def test_k8_symmetry_spot_check(self):
        sim = Simulator()
        topo = fattree(sim, k=8)
        a = topo.node("h_0_0_0").host_id
        b = topo.node("h_7_3_3").host_id
        for flow_id in range(8):
            data_path = trace_path(topo, a, b, flow_id)
            ack_path = trace_path(topo, b, a, flow_id, kind=ACK)
            assert ack_path == data_path[::-1]


class TestSpanningTrees:
    def test_trees_span_all_nodes(self, sim):
        topo = jellyfish(sim, n_switches=8, switch_degree=4)
        trees = build_trees(topo, 3, seed=1)
        for t in trees:
            assert set(t.nodes) == set(topo.graph.nodes)
            assert nx.is_tree(t)

    def test_trees_differ(self, sim):
        topo = jellyfish(sim, n_switches=10, switch_degree=4)
        trees = build_trees(topo, 4, seed=1)
        edge_sets = {frozenset(map(frozenset, t.edges)) for t in trees}
        assert len(edge_sets) > 1

    def test_symmetry_by_construction(self, sim):
        topo = jellyfish(sim, n_switches=8, switch_degree=4, hosts_per_switch=1)
        # jellyfish() installs spanning-tree routing already.
        n = len(topo.hosts)
        for flow_id in range(10):
            a, b = flow_id % n, (flow_id + 3) % n
            if a == b:
                continue
            data_path = trace_path(topo, a, b, flow_id)
            ack_path = trace_path(topo, b, a, flow_id, kind=ACK)
            assert ack_path == data_path[::-1]

    def test_tree_count_validated(self, sim):
        topo = jellyfish(sim)
        with pytest.raises(ValueError):
            build_trees(topo, 0, seed=1)

    def test_deterministic_trees(self, sim):
        topo = jellyfish(sim, n_switches=8, switch_degree=4)
        t1 = build_trees(topo, 2, seed=9)
        t2 = build_trees(topo, 2, seed=9)
        assert [sorted(t.edges) for t in t1] == [sorted(t.edges) for t in t2]


class TestDuplicateFlowIds:
    def test_duplicate_flow_id_between_different_host_pairs(self, sim):
        """Flow ids are only unique per host: two flows sharing an id but
        connecting different host pairs must each route toward their own
        destination (regression for a cache keyed by flow_id alone)."""
        topo = fattree(sim, k=4)
        install_ecmp(topo)
        path_a = trace_path(topo, 0, 8, flow_id=7)
        path_b = trace_path(topo, 1, 12, flow_id=7)
        # Interleave the lookups so per-flow caches are warm and reused.
        assert trace_path(topo, 0, 8, flow_id=7) == path_a
        assert trace_path(topo, 1, 12, flow_id=7) == path_b
        # Each path must actually end at its own destination (trace_path
        # asserts delivery), and the ACK path must mirror its own flow.
        assert trace_path(topo, 8, 0, flow_id=7, kind=ACK) == path_a[::-1]
        assert trace_path(topo, 12, 1, flow_id=7, kind=ACK) == path_b[::-1]
