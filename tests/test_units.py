"""Units: exact integer conversions the whole simulator relies on."""

import pytest

from repro import units


class TestTimeConversions:
    def test_constants_ratios(self):
        assert units.NS == 1000 * units.PS
        assert units.US == 1000 * units.NS
        assert units.MS == 1000 * units.US
        assert units.SEC == 1000 * units.MS

    def test_us_round_trip(self):
        assert units.to_us(units.us(12.5)) == pytest.approx(12.5)

    def test_ns_is_integer(self):
        assert isinstance(units.ns(1.5), int)
        assert units.ns(1.5) == 1500

    def test_ms_and_sec(self):
        assert units.ms(2) == 2 * units.MS
        assert units.sec(0.001) == units.MS

    def test_to_sec(self):
        assert units.to_sec(units.SEC) == 1.0


class TestSerialization:
    def test_mtu_at_100g_exact(self):
        # 1538 bytes * 8 bits * 1000 / 100 == 123040 ps, exactly.
        assert units.serialization_ps(1538, 100.0) == 123040

    def test_scales_inverse_with_rate(self):
        t100 = units.serialization_ps(1518, 100.0)
        t200 = units.serialization_ps(1518, 200.0)
        t400 = units.serialization_ps(1518, 400.0)
        assert t100 == 2 * t200 == 4 * t400

    def test_zero_bytes(self):
        assert units.serialization_ps(0, 100.0) == 0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            units.serialization_ps(100, 0)
        with pytest.raises(ValueError):
            units.serialization_ps(100, -1)

    def test_linear_in_bytes(self):
        assert units.serialization_ps(3000, 100.0) == 2 * units.serialization_ps(
            1500, 100.0
        )


class TestRates:
    def test_gbps_bytes_per_ps_round_trip(self):
        r = units.gbps_to_bytes_per_ps(100.0)
        assert units.bytes_per_ps_to_gbps(r) == pytest.approx(100.0)

    def test_100g_is_eightieth(self):
        # 100 Gb/s == 12.5 GB/s == 0.0125 bytes/ps.
        assert units.gbps_to_bytes_per_ps(100.0) == pytest.approx(0.0125)

    def test_bdp_100g_12us(self):
        # 100 Gb/s * 12 us = 150 KB.
        assert units.bdp_bytes(100.0, units.us(12)) == 150_000

    def test_rate_of_window_inverts_bdp(self):
        rtt = units.us(12)
        w = units.bdp_bytes(100.0, rtt)
        assert units.rate_of_window(w, rtt) == pytest.approx(100.0)

    def test_rate_of_window_rejects_bad_rtt(self):
        with pytest.raises(ValueError):
            units.rate_of_window(1000.0, 0)
