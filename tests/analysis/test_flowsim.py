"""Flow-level max-min simulator: fairness math, events, packet-sim parity."""

import pytest

from repro.analysis.flowsim import FlowLevelSimulator, from_topology
from repro.sim.engine import Simulator
from repro.topo.dumbbell import dumbbell
from repro.topo.fattree import fattree
from repro.transport.flow import Flow
from repro.units import MB, SEC, us


def simple_sim():
    fls = FlowLevelSimulator()
    fls.add_link("a", "s", 100.0, us(1))
    fls.add_link("b", "s", 100.0, us(1))
    fls.add_link("s", "r", 100.0, us(1))
    return fls


def path_via_s(flow):
    src = "a" if flow.src == 0 else "b"
    return [(src, "s"), ("s", "r")]


class TestMaxMin:
    def test_single_flow_gets_line_rate(self):
        fls = simple_sim()
        res = fls.run([Flow(0, 0, 9, 10 * MB)], path_via_s)
        assert res.completed() == 1
        # 10 MB at 100 Gb/s ~ 800 us (+ base latency); slowdown ~ 1.
        assert res.records[0].slowdown == pytest.approx(1.0, abs=0.02)

    def test_two_flows_share_bottleneck(self):
        fls = simple_sim()
        res = fls.run(
            [Flow(0, 0, 9, 10 * MB), Flow(1, 1, 9, 10 * MB)], path_via_s
        )
        for rec in res.records:
            assert rec.slowdown == pytest.approx(2.0, rel=0.05)

    def test_unequal_paths_max_min(self):
        # Flow A crosses both links; flow B only the second.  Capacities:
        # first link 10G, second 100G.  A is capped at 10, B gets 90.
        fls = FlowLevelSimulator()
        fls.add_link("x", "m", 10.0)
        fls.add_link("m", "y", 100.0)
        flows = [Flow(0, 0, 9, 10 * MB), Flow(1, 1, 9, 10 * MB)]

        def paths(flow):
            return [("x", "m"), ("m", "y")] if flow.flow_id == 0 else [("m", "y")]

        res = fls.run(flows, paths)
        rec = {r.flow.flow_id: r for r in res.records}
        # B finishes ~9x sooner than A (90 vs 10 Gb/s).
        assert rec[0].fct_ps / rec[1].fct_ps == pytest.approx(9.0, rel=0.15)

    def test_staggered_arrival_rates_adapt(self):
        fls = simple_sim()
        flows = [
            Flow(0, 0, 9, 10 * MB),
            Flow(1, 1, 9, 10 * MB, start_ps=us(400)),
        ]
        res = fls.run(flows, path_via_s)
        rec = {r.flow.flow_id: r for r in res.records}
        # Flow 0 ran alone for 400 us then shared: faster than a full share.
        assert rec[0].slowdown < 2.0
        assert rec[1].slowdown == pytest.approx(2.0, rel=0.25)

    def test_flow_conservation(self):
        fls = simple_sim()
        flows = [Flow(i, i % 2, 9, (i + 1) * MB) for i in range(6)]
        res = fls.run(flows, path_via_s)
        assert res.completed() == 6

    def test_unknown_link_rejected(self):
        fls = simple_sim()
        with pytest.raises(KeyError):
            fls.run([Flow(0, 0, 9, MB)], lambda f: [("nope", "s")])

    def test_empty_path_rejected(self):
        fls = simple_sim()
        with pytest.raises(ValueError):
            fls.run([Flow(0, 0, 9, MB)], lambda f: [])

    def test_bad_link_rate_rejected(self):
        fls = FlowLevelSimulator()
        with pytest.raises(ValueError):
            fls.add_link("a", "b", 0.0)


class TestFromTopology:
    def test_dumbbell_parity_with_packet_sim(self):
        """Two equal elephants: the flow-level model and the packet sim must
        agree on the slowdown within the CC's eta-utilization overhead."""
        from helpers import make_dumbbell
        from repro.experiments.common import launch_flows

        # Flow-level.
        sim = Simulator()
        topo = dumbbell(sim, n_senders=2)
        fls, path_fn = from_topology(topo)
        recv = topo.hosts[-1].host_id
        flows = [Flow(0, 0, recv, 5 * MB), Flow(1, 1, recv, 5 * MB)]
        flow_res = fls.run(flows, path_fn)
        flow_slow = sorted(r.slowdown for r in flow_res.records)

        # Packet-level (FNCC).
        sim2 = Simulator()
        topo2, env = make_dumbbell(sim2, cc="fncc")
        from repro.metrics.fct import FctCollector

        col = FctCollector(topo2)
        recv2 = topo2.hosts[-1].host_id
        launch_flows(
            topo2, [Flow(0, 0, recv2, 5 * MB), Flow(1, 1, recv2, 5 * MB)], env
        )
        sim2.run(until=us(20_000))
        pkt_slow = sorted(r.slowdown for r in col.records)
        assert len(pkt_slow) == 2
        # Ideal sharing says 2.0; the packet sim adds eta + transient costs.
        for fs, ps in zip(flow_slow, pkt_slow):
            assert ps == pytest.approx(fs, rel=0.25)

    def test_fattree_paths_respect_ecmp(self):
        topo = fattree(Simulator(), k=4)
        fls, path_fn = from_topology(topo)
        a = topo.node("h_0_0_0").host_id
        b = topo.node("h_2_1_0").host_id
        p1 = path_fn(Flow(7, a, b, MB))
        p2 = path_fn(Flow(7, a, b, MB))
        assert p1 == p2  # deterministic per flow
        assert len(p1) == 6  # host-tor-agg-core-agg-tor-host

    def test_fattree_flowsim_runs_at_k8(self):
        from repro.experiments.paper_scale import run_flow_level

        table = run_flow_level(k=8, n_flows=200, seed=2)
        assert sum(table.row_counts().values()) + len(table.overflow) == 200
        assert table.aggregate("average") >= 1.0
