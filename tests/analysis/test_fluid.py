"""The Eq. 1-3 fluid model."""

import pytest

from repro.analysis.fluid import (
    FluidLink,
    fair_window,
    is_fixed_point,
    queue_growth_rate_bytes_per_ps,
    simulate_queue,
)
from repro.units import us


def link100():
    return FluidLink(100.0, us(12))


class TestFairWindow:
    def test_eq3_single_flow_is_bdp(self):
        # W = B*RTT/1 = 150 KB at 100G / 12us.
        assert fair_window(link100(), 1) == pytest.approx(150_000)

    def test_eq3_divides_by_n(self):
        assert fair_window(link100(), 4) == pytest.approx(37_500)

    def test_beta_drains(self):
        assert fair_window(link100(), 2, beta=0.9) == pytest.approx(67_500)

    def test_validation(self):
        with pytest.raises(ValueError):
            fair_window(link100(), 0)
        with pytest.raises(ValueError):
            fair_window(link100(), 2, beta=0)
        with pytest.raises(ValueError):
            FluidLink(0, us(12))


class TestFixedPoint:
    def test_eq2_fair_windows_are_stationary(self):
        link = link100()
        for n in (1, 2, 4, 8):
            ws = [fair_window(link, n)] * n
            assert is_fixed_point(link, ws, tolerance=1e-12)

    def test_overload_grows(self):
        link = link100()
        ws = [fair_window(link, 1)] * 2  # 2x BDP offered
        assert queue_growth_rate_bytes_per_ps(link, ws) > 0

    def test_underload_negative(self):
        link = link100()
        assert queue_growth_rate_bytes_per_ps(link, [10_000.0]) < 0


class TestIntegration:
    def test_two_full_windows_grow_at_line_rate(self):
        """Two flows each offering a full BDP: dq/dt = B exactly — the
        Fig. 1 'queue fills at line rate before notification' situation."""
        link = link100()
        w = fair_window(link, 1)
        ts, q = simulate_queue(link, [lambda t: w, lambda t: w], t_end_ps=us(100))
        expected = link.bandwidth_bytes_per_ps * us(100)
        assert q[-1] == pytest.approx(expected, rel=0.02)

    def test_fair_windows_hold_queue_flat(self):
        link = link100()
        w = fair_window(link, 2)
        ts, q = simulate_queue(
            link, [lambda t: w, lambda t: w], t_end_ps=us(100), q0_bytes=50_000
        )
        assert q[-1] == pytest.approx(50_000, rel=0.02)

    def test_beta_drains_standing_queue(self):
        """Observation 4 + LHCS: windows at fair*beta drain the backlog."""
        link = link100()
        w = fair_window(link, 2, beta=0.9)
        ts, q = simulate_queue(
            link, [lambda t: w, lambda t: w], t_end_ps=us(200), q0_bytes=100_000
        )
        assert q[10] < q[0]  # draining from the start
        assert q[-1] == pytest.approx(0.0, abs=1.0)  # fully drained, not negative

    def test_queue_never_negative(self):
        link = link100()
        ts, q = simulate_queue(link, [lambda t: 1000.0], t_end_ps=us(100), q0_bytes=5_000)
        assert (q >= 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_queue(link100(), [lambda t: 0.0], t_end_ps=0)
