"""The §5.4.1 closed-form notification model."""

import pytest

from repro.analysis.notification import (
    NotificationModel,
    fncc_gain_ps,
    fncc_notification_delay_ps,
    hpcc_notification_delay_ps,
)
from repro.units import ACK_SIZE, DEFAULT_MTU, serialization_ps, us


class TestModel:
    def test_gain_positive_everywhere(self):
        m = NotificationModel(5)
        assert all(g > 0 for g in m.gain_profile())

    def test_gain_decreases_toward_last_hop(self):
        """The paper's §5.4.1 conclusion: first > middle > last."""
        m = NotificationModel(3)
        gains = m.gain_profile()
        assert gains[0] > gains[1] > gains[2]

    def test_hpcc_delay_formula_first_hop(self):
        m = NotificationModel(3, rate_gbps=100.0, prop_delay_ps=us(1.5))
        s_d = serialization_ps(DEFAULT_MTU, 100.0)
        s_a = serialization_ps(ACK_SIZE, 100.0)
        expected = 3 * (s_d + us(1.5)) + 4 * (s_a + us(1.5))
        assert m.hpcc_delay_ps(1) == expected

    def test_fncc_delay_formula(self):
        m = NotificationModel(3, rate_gbps=100.0, prop_delay_ps=us(1.5))
        s_a = serialization_ps(ACK_SIZE, 100.0)
        assert m.fncc_delay_ps(1) == s_a + us(1.5)
        assert m.fncc_delay_ps(3) == 3 * (s_a + us(1.5))

    def test_fncc_always_sub_rtt(self):
        """Observation 1: FNCC's notification beats one full RTT."""
        m = NotificationModel(3)
        rtt_ish = m.hpcc_delay_ps(1)  # data to receiver + ACK back ~ RTT
        for hop in (1, 2, 3):
            assert m.fncc_delay_ps(hop) < rtt_ish

    def test_hpcc_delay_decreases_with_hop(self):
        # Congestion nearer the receiver has a shorter data leg.
        m = NotificationModel(4)
        delays = [m.hpcc_delay_ps(j) for j in (1, 2, 3, 4)]
        assert delays == sorted(delays, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            NotificationModel(0)
        m = NotificationModel(3)
        with pytest.raises(ValueError):
            m.gain_ps(0)
        with pytest.raises(ValueError):
            m.gain_ps(4)

    def test_wrappers_match_model(self):
        m = NotificationModel(3)
        assert hpcc_notification_delay_ps(3, 2) == m.hpcc_delay_ps(2)
        assert fncc_notification_delay_ps(3, 2) == m.fncc_delay_ps(2)
        assert fncc_gain_ps(3, 2) == m.gain_ps(2)

    def test_rate_scales_serialization_component(self):
        slow = NotificationModel(3, rate_gbps=100.0, prop_delay_ps=0)
        fast = NotificationModel(3, rate_gbps=400.0, prop_delay_ps=0)
        assert fast.hpcc_delay_ps(1) * 4 == slow.hpcc_delay_ps(1)


class TestAgainstSimulation:
    def test_measured_gap_ordering_matches_theory(self):
        """Simulated HPCC-vs-FNCC response gaps follow the model's ordering
        (LHCS disabled to isolate pure notification latency)."""
        from repro.experiments.theory import measured_response_gap_us

        first = measured_response_gap_us("first", lhcs=False)
        last = measured_response_gap_us("last", lhcs=False)
        assert first is not None and last is not None
        assert first > last

    def test_lhcs_beats_pure_notification_on_last_hop(self):
        from repro.experiments.theory import measured_response_gap_us

        without = measured_response_gap_us("last", lhcs=False)
        with_ = measured_response_gap_us("last", lhcs=True)
        assert with_ >= without
