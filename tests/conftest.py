"""Shared fixtures and sys.path setup for cross-directory helpers."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def seeds():
    return SeedSequenceFactory(42)
